"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.viz import bar_chart, density_raster, log_series_plot


class TestLogSeriesPlot:
    def test_dimensions(self):
        out = log_series_plot(np.exp(-0.1 * np.arange(100)), width=40, height=8)
        lines = out.splitlines()
        assert len(lines) == 9  # 8 rows + axis
        assert all(len(l) == 43 for l in lines[:-1])  # "  |" + 40

    def test_label_header(self):
        out = log_series_plot([1.0, 10.0], label="energy")
        assert out.splitlines()[0].lstrip().startswith("energy")

    def test_decaying_series_slopes_down(self):
        out = log_series_plot(np.exp(-0.2 * np.arange(64)), width=64, height=10)
        rows = out.splitlines()
        first_star_col = rows_index = None
        # the star in the first column must be in a higher row than the
        # star in the last column
        grid = [list(l[3:]) for l in rows if l.startswith("  |")]
        col0 = [i for i, r in enumerate(grid) if r[0] == "*"]
        colN = [i for i, r in enumerate(grid) if r[-1] == "*"]
        assert col0[0] < colN[0]

    def test_handles_zeros(self):
        out = log_series_plot([0.0, 1.0, 0.0, 10.0])
        assert "*" in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            log_series_plot([])

    def test_one_star_per_column(self):
        out = log_series_plot(np.linspace(1, 100, 50), width=30, height=6)
        grid = [l[3:] for l in out.splitlines() if l.startswith("  |")]
        for col in range(30):
            assert sum(1 for row in grid if row[col] == "*") == 1


class TestDensityRaster:
    def test_shape(self):
        out = density_raster(np.random.default_rng(0).random((20, 10)))
        lines = out.splitlines()
        assert len(lines) == 11  # 10 rows + axis
        assert all(len(l) == 23 for l in lines[:-1])

    def test_empty_histogram_renders_blank(self):
        out = density_raster(np.zeros((5, 3)))
        assert set("".join(out.splitlines()[:-1])) <= {" ", "|"}

    def test_peak_is_darkest(self):
        h = np.zeros((8, 4))
        h[3, 2] = 10.0
        out = density_raster(h, flip_vertical=False)
        row = out.splitlines()[2]
        assert row[3 + 3] == "@"

    def test_vertical_flip(self):
        h = np.zeros((4, 3))
        h[0, 0] = 5.0  # bottom-left in flipped rendering
        flipped = density_raster(h, flip_vertical=True).splitlines()
        unflipped = density_raster(h, flip_vertical=False).splitlines()
        assert "@" in flipped[2] and "@" in unflipped[0]


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_value_empty_bar(self):
        out = bar_chart({"x": 0.0, "y": 2.0})
        assert out.splitlines()[0].count("#") == 0

    def test_unit_suffix(self):
        out = bar_chart({"bw": 12.5}, unit=" GB/s")
        assert "12.5 GB/s" in out

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})
