"""Miss-experiment harness tests (small, fast configurations)."""

import numpy as np
import pytest

from repro.core import OptimizationConfig
from repro.grid import GridSpec
from repro.perf.costmodel import LoopKind
from repro.perf.experiments import MissExperiment, default_scaled_machine
from repro.perf.machine import MachineSpec


@pytest.fixture(scope="module")
def tiny_setup():
    grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
    machine = MachineSpec.haswell().scaled(64)
    return grid, machine


def run_experiment(grid, machine, cfg, n=2000, iters=4, **kw):
    return MissExperiment(cfg, grid, n, iters, machine=machine, **kw).run()


class TestDefaultScaledMachine:
    def test_l12_and_l3_scales(self):
        m = default_scaled_machine(16, 64)
        assert m.levels[0].capacity_bytes == 2048
        assert m.levels[1].capacity_bytes == 16 * 1024
        assert m.levels[2].capacity_bytes == pytest.approx(
            25 * 1024 * 1024 // 64, rel=0.01
        )

    def test_geometry_valid(self):
        m = default_scaled_machine()
        for lv in m.levels:
            assert lv.capacity_bytes % (lv.line_bytes * lv.associativity) == 0


class TestMissSeries:
    def test_series_length(self, tiny_setup):
        grid, machine = tiny_setup
        s = run_experiment(grid, machine, OptimizationConfig.fully_optimized())
        assert len(s.per_iteration) == 4
        assert len(s.misses_per_iteration("L2")) == 4

    def test_totals_cover_requested_loops(self, tiny_setup):
        grid, machine = tiny_setup
        s = run_experiment(grid, machine, OptimizationConfig.fully_optimized())
        assert set(s.totals) == {LoopKind.UPDATE_V, LoopKind.ACCUMULATE}

    def test_all_loops_mode(self, tiny_setup):
        grid, machine = tiny_setup
        s = run_experiment(
            grid, machine, OptimizationConfig.fully_optimized(),
            loops=tuple(LoopKind),
        )
        assert set(s.totals) == set(LoopKind)

    def test_misses_per_particle_normalization(self, tiny_setup):
        grid, machine = tiny_setup
        s = run_experiment(grid, machine, OptimizationConfig.fully_optimized())
        mpp = s.misses_per_particle()
        total = s.totals[LoopKind.UPDATE_V].misses_by_name()["L1"]
        assert mpp[LoopKind.UPDATE_V]["L1"] == pytest.approx(total / (2000 * 4))

    def test_average_misses(self, tiny_setup):
        grid, machine = tiny_setup
        s = run_experiment(grid, machine, OptimizationConfig.fully_optimized())
        series = s.misses_per_iteration("L1")
        assert s.average_misses("L1") == pytest.approx(series.mean())

    def test_fused_mode(self, tiny_setup):
        grid, machine = tiny_setup
        s = run_experiment(
            grid, machine,
            OptimizationConfig.baseline(),
            trace_fused=True,
        )
        assert set(s.totals) == set(LoopKind)
        assert len(s.per_iteration) == 4
        assert s.per_iteration[0].misses_by_name()["L1"] > 0

    def test_physics_advances_during_experiment(self, tiny_setup):
        grid, machine = tiny_setup
        exp = MissExperiment(
            OptimizationConfig.fully_optimized(), grid, 2000, 3, machine=machine
        )
        before = np.asarray(exp.stepper.particles.dx).copy()
        exp.run()
        assert not np.allclose(before, np.asarray(exp.stepper.particles.dx))
        assert exp.stepper.iteration == 3


class TestOrderingEffect:
    """The headline Table II result at miniature scale."""

    @pytest.mark.slow
    def test_row_major_worse_than_morton_at_l2(self):
        grid = GridSpec(32, 32, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        machine = default_scaled_machine(32, 256)
        results = {}
        for name in ("row-major", "morton"):
            cfg = OptimizationConfig.fully_optimized(name).with_(sort_period=6)
            s = MissExperiment(cfg, grid, 8000, 12, machine=machine).run()
            results[name] = s.average_misses("L2")
        assert results["morton"] < results["row-major"]

    @pytest.mark.slow
    def test_sort_produces_sawtooth(self):
        grid = GridSpec(32, 32, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        machine = default_scaled_machine(32, 256)
        cfg = OptimizationConfig.fully_optimized("row-major").with_(sort_period=6)
        s = MissExperiment(cfg, grid, 8000, 13, machine=machine).run()
        l2 = s.misses_per_iteration("L2").astype(float)
        # misses grow during a sort period ...
        assert l2[5] > l2[1]
        # ... and drop right after the sort at iteration 6
        assert l2[7] < l2[5]
