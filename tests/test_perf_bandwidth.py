"""Bandwidth-model tests: saturation curve, STREAM, traffic accounting."""

import pytest

from repro.perf.bandwidth import (
    BandwidthModel,
    loop_bytes_per_particle,
    stream_triad_time,
)
from repro.perf.machine import MachineSpec


@pytest.fixture
def sb():
    return BandwidthModel(MachineSpec.sandybridge())


class TestSaturationCurve:
    def test_single_thread_near_core_bw(self, sb):
        assert sb.bandwidth_gbs(1) == pytest.approx(13.0, rel=0.02)

    def test_two_threads_nearly_double(self, sb):
        # Fig. 8 STREAM annotation: x2 at 2 threads
        assert sb.stream_speedup(2) == pytest.approx(2.0, rel=0.02)

    def test_four_threads_near_saturation(self, sb):
        # Fig. 8: x3.9 at 4 threads
        assert sb.stream_speedup(4) == pytest.approx(3.9, rel=0.1)

    def test_eight_threads_capped_at_peak(self, sb):
        # Fig. 8: x4 at 8 threads — the 4 channels are full
        assert sb.bandwidth_gbs(8) <= 51.2
        assert sb.stream_speedup(8) == pytest.approx(4.0, rel=0.05)

    def test_monotone_in_threads(self, sb):
        bws = [sb.bandwidth_gbs(p) for p in range(1, 17)]
        assert bws == sorted(bws)

    def test_rejects_nonpositive_threads(self, sb):
        with pytest.raises(ValueError):
            sb.bandwidth_gbs(0)

    def test_memory_time_inverse_bw(self, sb):
        t1 = sb.memory_time(1e9, 1)
        t4 = sb.memory_time(1e9, 4)
        assert t1 / t4 == pytest.approx(sb.stream_speedup(4))


class TestStreamTriad:
    def test_bytes_accounting(self):
        m = MachineSpec.sandybridge()
        t = stream_triad_time(1_000_000, m, 1)
        bw = BandwidthModel(m).bandwidth_gbs(1)
        assert t == pytest.approx(32e6 / (bw * 1e9))

    def test_faster_with_threads(self):
        m = MachineSpec.sandybridge()
        assert stream_triad_time(1 << 20, m, 4) < stream_triad_time(1 << 20, m, 1)


class TestLoopBytes:
    def test_update_x_heaviest_particle_loop(self):
        bx = loop_bytes_per_particle("update_x")
        bv = loop_bytes_per_particle("update_v")
        ba = loop_bytes_per_particle("accumulate")
        assert bx > bv > ba

    def test_coords_add_traffic(self):
        with_c = loop_bytes_per_particle("update_x", store_coords=True)
        without = loop_bytes_per_particle("update_x", store_coords=False)
        assert with_c > without

    def test_aos_streams_whole_record(self):
        aos = loop_bytes_per_particle("accumulate", particle_layout="aos")
        soa = loop_bytes_per_particle("accumulate", particle_layout="soa")
        # accumulate reads 3 of 7 attributes: AoS drags all 7 through
        assert aos > soa

    def test_miss_bytes_added(self):
        base = loop_bytes_per_particle("update_v")
        plus = loop_bytes_per_particle("update_v", miss_bytes_per_particle=64.0)
        assert plus == pytest.approx(base + 64.0)

    def test_sort_traffic(self):
        assert loop_bytes_per_particle("sort") > 0

    def test_unknown_loop_raises(self):
        with pytest.raises(ValueError):
            loop_bytes_per_particle("solve")
