"""GridSpec tests: coordinate transforms, wrap, bookkeeping."""

import numpy as np
import pytest

from repro.grid import GridSpec


class TestConstruction:
    def test_defaults_unit_box(self):
        g = GridSpec(8, 8)
        assert g.lx == 1.0 and g.ly == 1.0
        assert g.dx == pytest.approx(1 / 8)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            GridSpec(0, 8)
        with pytest.raises(ValueError):
            GridSpec(8, -2)

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            GridSpec(8, 8, 1.0, 1.0)
        with pytest.raises(ValueError):
            GridSpec(8, 8, 0.0, 1.0, 2.0, 1.0)

    def test_derived_quantities(self):
        g = GridSpec(16, 32, 0.0, 4.0, -1.0, 1.0)
        assert g.ncells == 512
        assert g.dx == pytest.approx(0.25)
        assert g.dy == pytest.approx(2.0 / 32)
        assert g.cell_area == pytest.approx(0.25 * 2.0 / 32)
        assert g.area == pytest.approx(8.0)

    @pytest.mark.parametrize("ncx,ncy,expect", [(8, 8, True), (8, 12, False), (3, 4, False)])
    def test_pow2_flag(self, ncx, ncy, expect):
        assert GridSpec(ncx, ncy).pow2 is expect

    def test_frozen(self):
        g = GridSpec(8, 8)
        with pytest.raises(AttributeError):
            g.ncx = 16


class TestCoordinateTransforms:
    def test_to_grid_coords(self):
        g = GridSpec(10, 10, 2.0, 12.0, 0.0, 5.0)
        x, y = g.to_grid_coords(7.0, 2.5)
        assert x == pytest.approx(5.0)
        assert y == pytest.approx(5.0)

    def test_roundtrip(self, rng):
        g = GridSpec(16, 8, -1.0, 3.0, 0.0, 2.0)
        xp = rng.uniform(-1, 3, 100)
        yp = rng.uniform(0, 2, 100)
        xg, yg = g.to_grid_coords(xp, yp)
        xb, yb = g.to_physical_coords(xg, yg)
        np.testing.assert_allclose(xb, xp, atol=1e-12)
        np.testing.assert_allclose(yb, yp, atol=1e-12)

    def test_split_coords_basic(self):
        g = GridSpec(8, 8)
        ix, iy, dx, dy = g.split_coords(3.25, 7.75)
        assert (ix, iy) == (3, 7)
        assert dx == pytest.approx(0.25)
        assert dy == pytest.approx(0.75)

    def test_split_coords_wraps_negative(self):
        g = GridSpec(8, 8)
        ix, _, dx, _ = g.split_coords(-0.25, 0.0)
        assert ix == 7
        assert dx == pytest.approx(0.75)

    def test_split_coords_wraps_beyond(self):
        g = GridSpec(8, 8)
        ix, _, dx, _ = g.split_coords(17.5, 0.0)
        assert ix == 1
        assert dx == pytest.approx(0.5)

    def test_split_coords_boundary_fold(self):
        # exactly the upper boundary must fold to cell 0
        g = GridSpec(8, 8)
        ix, iy, dx, dy = g.split_coords(8.0, 8.0)
        assert (ix, iy) == (0, 0)

    def test_split_coords_ranges(self, rng):
        g = GridSpec(16, 16)
        x = rng.uniform(-100, 100, 10_000)
        y = rng.uniform(-100, 100, 10_000)
        ix, iy, dx, dy = g.split_coords(x, y)
        assert ix.min() >= 0 and ix.max() < 16
        assert iy.min() >= 0 and iy.max() < 16
        assert dx.min() >= 0 and dx.max() < 1.0 + 1e-15
        assert dy.min() >= 0 and dy.max() < 1.0 + 1e-15

    def test_node_coords_shapes(self):
        g = GridSpec(4, 6, 0.0, 1.0, 0.0, 3.0)
        gx, gy = g.node_coords()
        assert gx.shape == (4, 6) and gy.shape == (4, 6)
        assert gx[0, 0] == 0.0
        assert gy[0, 5] == pytest.approx(2.5)
