"""Tests for the reflecting/absorbing boundary extensions (§VI)."""

import numpy as np
import pytest

from repro.core.boundaries import (
    absorb_axis_mask,
    compact_particles,
    push_positions_absorbing,
    push_positions_reflecting,
    reflect_axis,
)
from repro.curves import get_ordering
from repro.particles import make_storage
from tests.conftest import random_particle_arrays

NC = 16


class TestReflectAxis:
    def test_interior_unchanged(self, rng):
        x = rng.uniform(0, NC, 1000)
        i, off, flip = reflect_axis(x, NC)
        np.testing.assert_allclose(i + off, x, atol=1e-12)
        assert np.all(flip == 1.0)

    def test_single_bounce_left(self):
        i, off, flip = reflect_axis(np.array([-0.3]), NC)
        assert float(i[0] + off[0]) == pytest.approx(0.3)
        assert flip[0] == -1.0

    def test_single_bounce_right(self):
        i, off, flip = reflect_axis(np.array([NC + 0.7]), NC)
        assert float(i[0] + off[0]) == pytest.approx(NC - 0.7)
        assert flip[0] == -1.0

    def test_double_bounce_restores_velocity_sign(self):
        # crossing the box twice: 2L + 0.4 folds to 0.4 with no flip
        i, off, flip = reflect_axis(np.array([2 * NC + 0.4]), NC)
        assert float(i[0] + off[0]) == pytest.approx(0.4)
        assert flip[0] == 1.0

    def test_many_periods_out(self, rng):
        x = rng.uniform(-100, 100, 5000)
        i, off, flip = reflect_axis(x, NC)
        pos = i + off
        assert pos.min() >= 0.0 and pos.max() <= NC
        assert i.min() >= 0 and i.max() < NC
        assert set(np.unique(flip)) <= {-1.0, 1.0}

    def test_fold_is_involution_consistent(self, rng):
        """Folding an already-folded position changes nothing."""
        x = rng.uniform(-50, 50, 2000)
        i1, o1, _ = reflect_axis(x, NC)
        i2, o2, f2 = reflect_axis(i1 + o1, NC)
        np.testing.assert_allclose(i1 + o1, i2 + o2, atol=1e-12)
        assert np.all(f2 == 1.0)

    def test_wall_parking(self):
        i, off, _ = reflect_axis(np.array([float(NC)]), NC)
        assert i[0] == NC - 1 and off[0] == 1.0


class TestReflectingPush:
    def _particles(self, rng, ordering, n=500, v_scale=10.0):
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, n, NC, NC)
        s = make_storage("soa", n, store_coords=True)
        s.set_state(ordering.encode(ix, iy), dx, dy, v_scale * vx, v_scale * vy, ix, iy)
        return s

    def test_positions_stay_inside(self, rng):
        o = get_ordering("morton", NC, NC)
        s = self._particles(rng, o)
        for _ in range(5):
            push_positions_reflecting(s, NC, NC, o)
        x = np.asarray(s.ix) + np.asarray(s.dx)
        assert x.min() >= 0.0 and x.max() <= NC

    def test_velocity_flip_consistency(self, rng):
        """A particle that bounced once moves back toward the interior."""
        o = get_ordering("row-major", NC, NC)
        s = make_storage("soa", 1, store_coords=True)
        s.set_state(
            o.encode(np.array([NC - 1]), np.array([0])),
            np.array([0.9]), np.array([0.5]),
            np.array([0.5]), np.array([0.0]),  # heading right, will bounce
            np.array([NC - 1]), np.array([0]),
        )
        push_positions_reflecting(s, NC, NC, o)
        assert float(s.vx[0]) == -0.5
        assert float(s.ix[0] + s.dx[0]) == pytest.approx(NC - 0.4)

    def test_energy_preserved_by_reflection(self, rng):
        o = get_ordering("morton", NC, NC)
        s = self._particles(rng, o)
        ke_before = np.sum(np.asarray(s.vx) ** 2 + np.asarray(s.vy) ** 2)
        push_positions_reflecting(s, NC, NC, o)
        ke_after = np.sum(np.asarray(s.vx) ** 2 + np.asarray(s.vy) ** 2)
        assert ke_after == pytest.approx(ke_before, rel=1e-12)

    def test_icell_consistent(self, rng):
        o = get_ordering("l4d", NC, NC, size=4)
        s = self._particles(rng, o)
        push_positions_reflecting(s, NC, NC, o)
        np.testing.assert_array_equal(
            np.asarray(s.icell), o.encode(np.asarray(s.ix), np.asarray(s.iy))
        )

    def test_interior_matches_periodic_kernel(self, rng):
        """Slow particles that never touch a wall move identically under
        reflecting and periodic updates."""
        from repro.core.kernels import push_positions_bitwise

        o = get_ordering("morton", NC, NC)
        sr = self._particles(rng, o, v_scale=0.01)
        sp = make_storage("soa", sr.n, store_coords=True)
        sp.set_state(**sr.as_dict())
        push_positions_reflecting(sr, NC, NC, o)
        push_positions_bitwise(sp, NC, NC, o)
        np.testing.assert_allclose(
            np.asarray(sr.ix) + np.asarray(sr.dx),
            np.asarray(sp.ix) + np.asarray(sp.dx),
            atol=1e-12,
        )


class TestAbsorbing:
    def test_mask_detects_escapes(self):
        assert absorb_axis_mask(np.array([-0.1]), NC)[0]
        assert absorb_axis_mask(np.array([float(NC)]), NC)[0]
        assert not absorb_axis_mask(np.array([NC - 0.5]), NC)[0]

    def test_push_reports_absorbed(self, rng):
        o = get_ordering("row-major", NC, NC)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, 2000, NC, NC)
        s = make_storage("soa", 2000, store_coords=True)
        s.set_state(o.encode(ix, iy), dx, dy, 5 * vx, 5 * vy, ix, iy)
        x_pred = ix + dx + 5 * vx
        y_pred = iy + dy + 5 * vy
        expected = (
            (x_pred < 0) | (x_pred >= NC) | (y_pred < 0) | (y_pred >= NC)
        )
        absorbed = push_positions_absorbing(s, NC, NC, o)
        np.testing.assert_array_equal(absorbed, expected)

    def test_survivors_updated_correctly(self, rng):
        o = get_ordering("row-major", NC, NC)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, 1000, NC, NC)
        s = make_storage("soa", 1000, store_coords=True)
        s.set_state(o.encode(ix, iy), dx, dy, vx, vy, ix, iy)
        absorbed = push_positions_absorbing(s, NC, NC, o)
        keep = ~absorbed
        x_new = (np.asarray(s.ix) + np.asarray(s.dx))[keep]
        x_pred = (ix + dx + vx)[keep]
        np.testing.assert_allclose(x_new, x_pred, atol=1e-12)

    def test_absorbed_entries_remain_valid(self, rng):
        o = get_ordering("morton", NC, NC)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, 500, NC, NC)
        s = make_storage("soa", 500, store_coords=True)
        s.set_state(o.encode(ix, iy), dx, dy, 20 * vx, 20 * vy, ix, iy)
        push_positions_absorbing(s, NC, NC, o)
        icell = np.asarray(s.icell)
        assert icell.min() >= 0 and icell.max() < o.ncells_allocated
        assert np.asarray(s.dx).min() >= 0 and np.asarray(s.dx).max() < 1.0 + 1e-12


class TestCompaction:
    def test_compact_keeps_order_and_content(self, rng):
        o = get_ordering("row-major", NC, NC)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, 300, NC, NC)
        s = make_storage("soa", 300, weight=0.5, store_coords=True)
        s.set_state(o.encode(ix, iy), dx, dy, vx, vy, ix, iy)
        keep = rng.random(300) > 0.4
        out = compact_particles(s, keep)
        assert out.n == int(keep.sum())
        assert out.weight == 0.5
        np.testing.assert_array_equal(np.asarray(out.vx), vx[keep])

    def test_compact_empty(self, rng):
        s = make_storage("soa", 10, store_coords=False)
        s.set_state(np.zeros(10, dtype=int), *(rng.random(10) for _ in range(4)))
        out = compact_particles(s, np.zeros(10, dtype=bool))
        assert out.n == 0

    @pytest.mark.parametrize("layout", ["soa", "aos"])
    def test_compact_both_layouts(self, rng, layout):
        s = make_storage(layout, 50, store_coords=True)
        s.set_state(
            np.arange(50), rng.random(50), rng.random(50),
            rng.random(50), rng.random(50),
            np.arange(50) % NC, np.arange(50) // NC,
        )
        out = compact_particles(s, np.arange(50) % 2 == 0)
        assert out.n == 25
        np.testing.assert_array_equal(np.asarray(out.icell), np.arange(0, 50, 2))


class TestAbsorptionPhysics:
    def test_population_decays_to_zero_eventually(self, rng):
        """Free-streaming particles in an absorbing box all leave."""
        o = get_ordering("row-major", NC, NC)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, 2000, NC, NC)
        # ensure nonzero drift for everyone
        vx = np.where(np.abs(vx) < 0.1, 0.5, vx)
        s = make_storage("soa", 2000, store_coords=True)
        s.set_state(o.encode(ix, iy), dx, dy, vx, vy, ix, iy)
        for _ in range(200):
            if s.n == 0:
                break
            absorbed = push_positions_absorbing(s, NC, NC, o)
            s = compact_particles(s, ~absorbed)
        assert s.n == 0
