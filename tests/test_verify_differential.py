"""Tests for the differential-verification subsystem (repro.verify).

Covers the three layers the subsystem promises:

* the seeded config-space sampler is deterministic and produces legal
  scenarios;
* the differential runner passes the promise matrix on real backends,
  and its bisector pinpoints an injected single-phase perturbation to
  the exact step/phase/array;
* the scalar :class:`~repro.core.reference.ReferenceStepper` is the
  bitwise baseline: it reproduces the numpy backend exactly over a
  50-step run including counting sorts;
* the golden gate fails on a corrupted digest and on a one-ULP series
  perturbation, and skips cleanly for non-importable backends.
"""

import copy
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.reference import ReferenceStepper
from repro.core.stepper import PICStepper
from repro.grid.spec import GridSpec
from repro.particles.initializers import LandauDamping
from repro.verify import (
    DifferentialRunner,
    Perturbation,
    Scenario,
    ScenarioSampler,
    check_golden,
    generate_golden,
    golden_cases,
    load_golden,
)

ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
class TestScenarioSampler:
    def test_deterministic_for_same_seed(self):
        a = ScenarioSampler(seed=7).sample(12)
        b = ScenarioSampler(seed=7).sample(12)
        assert a == b

    def test_different_seeds_differ(self):
        a = ScenarioSampler(seed=0).sample(12)
        b = ScenarioSampler(seed=1).sample(12)
        assert a != b

    def test_scenarios_are_constructible(self):
        # every sampled scenario must produce a valid grid + config on
        # every backend-independent axis (pow2 grid => bitwise legal)
        for s in ScenarioSampler(seed=3).sample(20):
            grid = s.grid()
            assert grid.pow2
            cfg = s.config(backend="numpy")
            assert cfg.ordering == s.ordering
            assert s.case() is not None

    def test_population_straddles_chunk_size(self):
        pools = ScenarioSampler(seed=0).n_particles_pool
        assert min(pools) <= 8192 < max(pools)


def _small_scenario(**overrides) -> Scenario:
    params = dict(
        index=0, ncx=32, ncy=8, n_particles=1500, n_steps=6,
        case_name="landau", ordering="morton", field_layout="redundant",
        loop_mode="split", position_update="bitwise", hoisting=True,
        sort_period=2, sort_variant="out-of-place", chunk_size=8192,
        seed=11,
    )
    params.update(overrides)
    return Scenario(**params)


# ----------------------------------------------------------------------
# Differential runner
# ----------------------------------------------------------------------
class TestDifferentialRunner:
    def test_promise_matrix_small_sample(self):
        """Fast tier-1 smoke: 3 sampled scenarios, zero divergences."""
        runner = DifferentialRunner(include_mp=False)
        reports = runner.run(ScenarioSampler(seed=0).sample(3))
        for report in reports:
            assert report.ok, report.describe()

    def test_mp_combo_is_bitwise(self):
        runner = DifferentialRunner(include_mp=True, mp_workers=2)
        report = runner.run_scenario(_small_scenario())
        mp = [p for p in report.pairs if p.combo.backend == "numpy-mp"]
        assert mp and mp[0].relation == "bitwise"
        assert report.ok, report.describe()

    def test_fused_single_chunk_promised_bitwise(self):
        runner = DifferentialRunner(include_mp=False)
        combos = dict(
            (c.backend + "/" + (c.loop_mode or ""), rel)
            for c, rel in runner.combos(_small_scenario(n_particles=100))
        )
        assert combos["numpy/fused"] == "bitwise"
        combos_big = dict(
            (c.backend + "/" + (c.loop_mode or ""), rel)
            for c, rel in runner.combos(_small_scenario(n_particles=9000))
        )
        assert combos_big["numpy/fused"] == "tolerance"

    def test_bisection_pinpoints_injected_phase(self):
        """A one-ULP bump at (step 2, update_v, vx) must be attributed
        to exactly that step, phase and array."""
        runner = DifferentialRunner(include_mp=False)
        report = runner.run_scenario(
            _small_scenario(),
            perturbation=Perturbation(step=2, phase="update_v", array="vx"),
        )
        # the sort-variant-flip combo runs split loops, so update_v is
        # a comparable checkpoint for it
        split_pairs = [
            p for p in report.pairs if p.combo.sort_variant is not None
        ]
        assert split_pairs, "expected a split-path combo in the matrix"
        diverged = split_pairs[0]
        assert not diverged.ok
        assert diverged.divergence.step == 2
        assert diverged.divergence.phase == "update_v"
        assert diverged.divergence.array == "vx"

    def test_injection_at_accumulate_localizes_to_accumulate(self):
        runner = DifferentialRunner(include_mp=False)
        report = runner.run_scenario(
            _small_scenario(sort_period=0),
            perturbation=Perturbation(step=1, phase="accumulate",
                                      array="dx", factor=1.0 + 1e-9),
        )
        bad = [p for p in report.pairs if not p.ok]
        assert bad, "perturbation must be detected"
        assert all(p.divergence.step == 1 for p in bad)
        assert all(p.divergence.phase == "accumulate" for p in bad)

    def test_sort_permutation_check_runs(self):
        runner = DifferentialRunner(include_mp=False)
        report = runner.run_scenario(_small_scenario(sort_period=2))
        assert report.sort_permutation_ok is True
        report_nosort = runner.run_scenario(_small_scenario(sort_period=0))
        assert report_nosort.sort_permutation_ok is None

    @pytest.mark.verify_full
    def test_promise_matrix_full(self):
        """The full 16-sample matrix with the mp combo included."""
        runner = DifferentialRunner(include_mp=True, mp_workers=2)
        reports = runner.run(ScenarioSampler(seed=0).sample(16))
        assert all(r.ok for r in reports), "\n".join(
            r.describe() for r in reports if not r.ok
        )


# ----------------------------------------------------------------------
# ReferenceStepper: the bitwise baseline (full step incl. counting sort)
# ----------------------------------------------------------------------
class TestReferenceBaseline:
    def test_reference_matches_numpy_bitwise_50_steps(self):
        grid = GridSpec(32, 8, xmax=4 * np.pi, ymax=2 * np.pi)
        case = LandauDamping(alpha=0.1, vth=1.0)
        cfg = OptimizationConfig(
            field_layout="redundant", ordering="morton", loop_mode="split",
            position_update="bitwise", hoisting=True, sort_period=10,
            backend="numpy",
        )
        fast = PICStepper(grid, cfg, case=case, n_particles=300,
                          seed=3, quiet=True)
        ref = ReferenceStepper(grid, cfg, case=case, n_particles=300,
                               seed=3, quiet=True)
        try:
            for step in range(50):
                fast.step()
                ref.step()
                for name in ("icell", "dx", "dy", "vx", "vy"):
                    a = np.asarray(getattr(fast.particles, name))
                    b = getattr(ref, name)
                    assert a.tobytes() == b.tobytes(), (step, name)
                assert np.asarray(fast.rho_grid).tobytes() == \
                    ref.rho_grid.tobytes(), step
                assert np.asarray(fast.ex_grid).tobytes() == \
                    ref.ex_grid.tobytes(), step
        finally:
            fast.close()

    @pytest.mark.parametrize("layout,push,hoist", [
        ("standard", "branch", False),
        ("redundant", "modulo", True),
    ])
    def test_reference_matches_other_variants(self, layout, push, hoist):
        grid = GridSpec(16, 8, xmax=4 * np.pi, ymax=2 * np.pi)
        case = LandauDamping(alpha=0.1, vth=1.0)
        cfg = OptimizationConfig(
            field_layout=layout, ordering="row-major", loop_mode="split",
            position_update=push, hoisting=hoist, sort_period=4,
            backend="numpy",
        )
        fast = PICStepper(grid, cfg, case=case, n_particles=200,
                          seed=5, quiet=True)
        ref = ReferenceStepper(grid, cfg, case=case, n_particles=200,
                               seed=5, quiet=True)
        try:
            fast.run(12)
            ref.run(12)
            for name in ("icell", "dx", "dy", "vx", "vy"):
                a = np.asarray(getattr(fast.particles, name))
                assert a.tobytes() == getattr(ref, name).tobytes(), name
            assert np.asarray(fast.rho_grid).tobytes() == \
                ref.rho_grid.tobytes()
        finally:
            fast.close()


# ----------------------------------------------------------------------
# Golden gate
# ----------------------------------------------------------------------
class TestGoldenGate:
    @pytest.fixture(scope="class")
    def landau_doc(self):
        path = ROOT / "golden" / "GOLDEN_landau.json"
        return load_golden(path)

    def test_committed_golden_passes_on_numpy(self, landau_doc):
        result = check_golden(landau_doc, "numpy")
        assert result.ok, result.describe()

    def test_corrupted_digest_fails(self, landau_doc):
        bad = copy.deepcopy(landau_doc)
        digest = bad["digests"][20]
        bad["digests"][20] = ("0" if digest[0] != "0" else "1") + digest[1:]
        result = check_golden(bad, "numpy")
        assert not result.ok
        assert any("digest" in m for m in result.mismatches)

    def test_one_ulp_series_perturbation_fails(self, landau_doc):
        bad = copy.deepcopy(landau_doc)
        v = bad["series"]["field_energy"][10]
        bad["series"]["field_energy"][10] = float(np.nextafter(v, np.inf))
        result = check_golden(bad, "numpy")
        assert not result.ok
        assert any("field_energy" in m for m in result.mismatches)

    def test_gate_tool_fails_on_corrupted_golden(self, landau_doc, tmp_path):
        import sys

        sys.path.insert(0, str(ROOT / "tools"))
        try:
            import verify_gate
        finally:
            sys.path.pop(0)
        # corrupt one digest of one case, leave the other intact
        for name in golden_cases():
            src = ROOT / "golden" / f"GOLDEN_{name}.json"
            (tmp_path / src.name).write_text(src.read_text())
        bad = copy.deepcopy(landau_doc)
        digest = bad["digests"][5]
        bad["digests"][5] = ("f" if digest[0] != "f" else "e") + digest[1:]
        (tmp_path / "GOLDEN_landau.json").write_text(json.dumps(bad))
        rc = verify_gate.main(
            ["--golden-dir", str(tmp_path), "--backend", "numpy"]
        )
        assert rc == 1

    def test_gate_tool_skips_unimportable_backend(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, str(ROOT / "tools"))
        try:
            import verify_gate
        finally:
            sys.path.pop(0)
        from repro.core.backends import available_backends

        if "numba" in available_backends():
            pytest.skip("numba importable here; nothing to skip")
        for name in golden_cases():
            src = ROOT / "golden" / f"GOLDEN_{name}.json"
            (tmp_path / src.name).write_text(src.read_text())
        rc = verify_gate.main(
            ["--golden-dir", str(tmp_path), "--backend", "numba"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "SKIP" in out

    def test_missing_golden_reports_error(self, tmp_path):
        import sys

        sys.path.insert(0, str(ROOT / "tools"))
        try:
            import verify_gate
        finally:
            sys.path.pop(0)
        rc = verify_gate.main(
            ["--golden-dir", str(tmp_path / "nowhere"), "--backend", "numpy"]
        )
        assert rc == 2

    @pytest.mark.verify_full
    def test_regenerated_matches_committed(self):
        """Regeneration is reproducible: fresh documents equal committed."""
        for name in golden_cases():
            committed = load_golden(ROOT / "golden" / f"GOLDEN_{name}.json")
            fresh = generate_golden(name)
            assert fresh["digests"] == committed["digests"], name
            assert fresh["series"] == committed["series"], name
