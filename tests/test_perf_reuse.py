"""Reuse-distance analysis tests: exactness against brute force, and the
stack-distance / LRU-simulator consistency theorem."""

import numpy as np
import pytest

from repro.perf.cache import CacheHierarchy
from repro.perf.machine import CacheLevelSpec
from repro.perf.reuse import miss_ratio_curve, reuse_distances, reuse_profile


def brute_force_distances(lines):
    """O(n^2) oracle: distinct lines strictly between same-line touches."""
    out = []
    last = {}
    for i, line in enumerate(lines):
        if line in last:
            between = set(lines[last[line] + 1 : i])
            out.append(len(between))
        else:
            out.append(-1)
        last[line] = i
    return np.array(out)


class TestReuseDistances:
    def test_simple_sequence(self):
        # lines: a b a -> a's reuse distance is 1 (only b between)
        addrs = np.array([0, 64, 0])
        np.testing.assert_array_equal(reuse_distances(addrs), [-1, -1, 1])

    def test_immediate_reuse_zero(self):
        addrs = np.array([0, 0, 0])
        np.testing.assert_array_equal(reuse_distances(addrs), [-1, 0, 0])

    def test_sub_line_addresses_same_line(self):
        addrs = np.array([0, 8, 120, 64])
        d = reuse_distances(addrs)
        np.testing.assert_array_equal(d[:3], [-1, 0, -1])

    def test_matches_brute_force(self, rng):
        addrs = rng.integers(0, 40, 400) * 64
        lines = (addrs >> 6).tolist()
        np.testing.assert_array_equal(
            reuse_distances(addrs), brute_force_distances(lines)
        )

    def test_duplicate_heavy_trace(self, rng):
        addrs = rng.integers(0, 4, 200) * 64
        lines = (addrs >> 6).tolist()
        np.testing.assert_array_equal(
            reuse_distances(addrs), brute_force_distances(lines)
        )


class TestProfileAndCurve:
    def test_profile_counts(self, rng):
        addrs = rng.integers(0, 32, 500) * 64
        p = reuse_profile(addrs)
        assert p.n_accesses == 500
        assert p.n_cold == len(np.unique(addrs >> 6))
        assert len(p.distances) == 500 - p.n_cold

    def test_fraction_within_monotone(self, rng):
        addrs = rng.integers(0, 256, 2000) * 64
        p = reuse_profile(addrs)
        fr = [p.fraction_within(c) for c in (1, 8, 64, 512)]
        assert fr == sorted(fr)
        assert p.fraction_within(10**9) == 1.0

    def test_miss_ratio_curve_monotone_decreasing(self, rng):
        addrs = rng.integers(0, 128, 3000) * 64
        curve = miss_ratio_curve(reuse_profile(addrs), (1, 4, 16, 64, 256))
        vals = [curve[c] for c in sorted(curve)]
        assert vals == sorted(vals, reverse=True)

    def test_curve_matches_fully_associative_simulator(self, rng):
        """Stack-distance theory: MRC(C) == LRU simulator misses for a
        fully-associative cache of C lines."""
        addrs = rng.integers(0, 64, 1500) * 64
        p = reuse_profile(addrs)
        for cap_lines in (8, 32):
            sim = CacheHierarchy(
                (CacheLevelSpec("L", cap_lines * 64, 64, cap_lines, 1.0),),
                prefetch=False,
            )
            misses = sim.simulate(addrs).misses_by_name()["L"]
            predicted = miss_ratio_curve(p, [cap_lines])[cap_lines]
            assert misses == round(predicted * p.n_accesses)

    def test_orderings_separate_on_field_reuse(self, rng):
        """The structural §IV-B claim: after a particle shuffle with
        local drift, Morton field traces have shorter reuse tails than
        row-major at cache-sized capacities."""
        from repro.curves import get_ordering

        ncx = ncy = 32
        n = 4000
        # sorted particles with a small spatial drift applied
        base_ix = np.repeat(np.arange(ncx), n // ncx)
        base_iy = rng.integers(0, ncy, n)
        drift = rng.integers(-2, 3, n)
        ix = (base_ix + drift) % ncx
        iy = (base_iy + rng.integers(-2, 3, n)) % ncy
        tails = {}
        for name in ("row-major", "morton"):
            o = get_ordering(name, ncx, ncy)
            icell = o.encode(ix, iy)
            order = np.argsort(o.encode(base_ix, base_iy), kind="stable")
            addrs = 64 * icell[order]  # one line per cell (the E row)
            p = reuse_profile(addrs)
            tails[name] = p.tail_fraction(64)  # a 64-line cache
        assert tails["morton"] < tails["row-major"]
