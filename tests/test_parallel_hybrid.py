"""Distributed-PIC tests: rank-count invariance of the physics."""

import numpy as np
import pytest

from repro.core import OptimizationConfig
from repro.grid import GridSpec
from repro.parallel.hybrid import (
    DistributedPICStepper,
    run_distributed_landau,
    split_population,
)
from repro.particles import LandauDamping, load_particles
from repro.curves import get_ordering


class TestSplitPopulation:
    def test_shares_cover_population(self):
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        o = get_ordering("morton", 16, 16)
        parts = load_particles(grid, o, LandauDamping(), 100, seed=3)
        shares = split_population(parts, 3)
        assert sum(len(s["icell"]) for s in shares) == 100
        rebuilt = np.concatenate([s["icell"] for s in shares])
        np.testing.assert_array_equal(rebuilt, np.asarray(parts.icell))

    def test_shares_are_copies(self):
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        o = get_ordering("morton", 16, 16)
        parts = load_particles(grid, o, LandauDamping(), 50, seed=3)
        shares = split_population(parts, 2)
        shares[0]["vx"][:] = 1e9
        assert not np.any(np.asarray(parts.vx) == 1e9)


class TestDistributedEqualsSerial:
    """§V-A's no-domain-decomposition scheme must not change physics."""

    @pytest.mark.parametrize("nranks", [2, 3, 4])
    def test_field_energy_matches_single_rank(self, nranks):
        serial = run_distributed_landau(1, 6000, 8)
        multi = run_distributed_landau(nranks, 6000, 8)
        np.testing.assert_allclose(
            multi["field_energy"], serial["field_energy"], rtol=1e-12
        )

    def test_mode_series_matches(self):
        serial = run_distributed_landau(1, 6000, 8)
        multi = run_distributed_landau(4, 6000, 8)
        np.testing.assert_allclose(multi["mode"], serial["mode"], rtol=1e-10)

    def test_deterministic_across_runs(self):
        a = run_distributed_landau(3, 4000, 5)
        b = run_distributed_landau(3, 4000, 5)
        np.testing.assert_array_equal(a["field_energy"], b["field_energy"])

    def test_works_with_standard_layout(self):
        cfg = OptimizationConfig.baseline()
        a = run_distributed_landau(1, 4000, 5, config=cfg)
        b = run_distributed_landau(2, 4000, 5, config=cfg)
        np.testing.assert_allclose(a["field_energy"], b["field_energy"], rtol=1e-12)

    def test_uneven_rank_counts(self):
        # 6000 particles over 7 ranks: shares differ in size
        a = run_distributed_landau(1, 6000, 4)
        b = run_distributed_landau(7, 6000, 4)
        np.testing.assert_allclose(a["field_energy"], b["field_energy"], rtol=1e-12)


class TestDistributedStepper:
    def test_rho_is_global_on_every_rank(self):
        """Each rank's rho_grid after a step must be the full-population
        density, not its local share."""
        from repro.parallel.mpi import SimMPI
        from repro.particles.storage import make_storage

        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        cfg = OptimizationConfig.fully_optimized()
        o = get_ordering(cfg.ordering, 16, 16)
        parts = load_particles(grid, o, LandauDamping(alpha=0.1), 4000, seed=0)
        shares = split_population(parts, 2)

        def fn(comm):
            share = shares[comm.rank]
            local = make_storage("soa", len(share["icell"]), weight=parts.weight)
            local.set_state(**share)
            st = DistributedPICStepper(comm, grid, cfg, particles=local, dt=0.1)
            return st.rho_grid.sum()

        totals = SimMPI(2).run(fn)
        # sum of rho over grid points = q * w * N_global / cell_area
        expected = -parts.weight * 4000 / grid.cell_area
        assert totals[0] == pytest.approx(totals[1])
        assert totals[0] == pytest.approx(expected, rel=1e-9)
