"""Tests for curve-aware shard partitioning + measured data movement.

The contract under test (docs/parallelism.md, §V-B): cutting the
redundant ``rho_1d`` cell rows along *any* contiguous curve segments —
flat, curve-aligned, or histogram-balanced — never changes the deposit
result, because each row has exactly one owner and each owner visits
its particles in global order.  So the bitwise promise must hold for
every partition mode at every worker count, while ``curve-balanced``
must *measurably* improve the max/mean particle load on a skewed
density.  The data-movement ledger and the stall-parameter calibration
ride the same machinery and must be deterministic.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.backends import get_backend
from repro.core.config import OptimizationConfig
from repro.core.simulation import Simulation
from repro.curves import get_ordering
from repro.grid.spec import GridSpec
from repro.parallel.openmp import partition_range
from repro.parallel.partition import (
    PARTITION_MODES,
    PartitionPlanner,
    balance_ratio,
    partition_cells,
)
from repro.particles.initializers import GaussianBump
from repro.perf.datamove import (
    DEFAULT_CALIBRATION_MISSES,
    deposit_movement,
    fit_stall_overlap,
    rusage_sample,
)
from repro.perf.instrument import StepTimings


def _skewed_histogram(nalloc: int, n: int, hot_cells: int = 8) -> np.ndarray:
    """90% of ``n`` particles piled into the first ``hot_cells`` cells."""
    rng = np.random.default_rng(99)
    hot = rng.integers(0, hot_cells, size=int(0.9 * n))
    cold = rng.integers(0, nalloc, size=n - hot.size)
    return np.bincount(np.concatenate([hot, cold]), minlength=nalloc)


def _coverage_ok(ranges, nalloc):
    """Slices tile [0, nalloc) contiguously with empties trailing only."""
    assert ranges[0].start == 0
    assert ranges[-1].stop == nalloc
    seen_empty = False
    for a, b in zip(ranges, ranges[1:]):
        assert a.stop == b.start
    for sl in ranges:
        assert sl.stop >= sl.start
        if sl.stop == sl.start:
            seen_empty = True
        else:
            assert not seen_empty, "empty range before a non-empty one"


class TestPartitionCells:
    @pytest.mark.parametrize("mode", PARTITION_MODES)
    @pytest.mark.parametrize("nparts", [1, 2, 3, 5, 7, 16])
    def test_covers_exactly(self, mode, nparts):
        nalloc = 64
        hist = _skewed_histogram(nalloc, 1000)
        ranges = partition_cells(nalloc, nparts, mode=mode, histogram=hist)
        assert len(ranges) == nparts
        _coverage_ok(ranges, nalloc)

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_more_parts_than_cells_trails_empties(self, mode):
        hist = np.array([50, 1, 1], dtype=np.int64)
        ranges = partition_cells(3, 7, mode=mode, histogram=hist)
        _coverage_ok(ranges, 3)
        nonempty = [sl for sl in ranges if sl.stop > sl.start]
        assert len(nonempty) == 3
        assert all(sl.stop - sl.start == 1 for sl in nonempty)

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_zero_cells(self, mode):
        ranges = partition_cells(0, 4, mode=mode, histogram=np.zeros(0, np.int64))
        assert len(ranges) == 4
        assert all(sl.start == 0 and sl.stop == 0 for sl in ranges)

    def test_flat_sizes_differ_by_at_most_one(self):
        ranges = partition_cells(100, 7, mode="flat")
        sizes = [sl.stop - sl.start for sl in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_curve_cuts_are_block_aligned(self):
        nalloc, nparts = 256, 3
        per = nalloc // nparts
        align = 1 << (per.bit_length() - 1)  # largest pow2 <= per
        ranges = partition_cells(nalloc, nparts, mode="curve")
        for sl in ranges[:-1]:
            assert sl.stop % align == 0 or sl.stop == nalloc
        _coverage_ok(ranges, nalloc)

    def test_balanced_strictly_improves_skew(self):
        nalloc = 256
        hist = _skewed_histogram(nalloc, 20_000)
        for nparts in (2, 3, 5, 7):
            flat = partition_cells(nalloc, nparts, mode="flat")
            bal = partition_cells(
                nalloc, nparts, mode="curve-balanced", histogram=hist
            )
            r_flat = balance_ratio(flat, hist)
            r_bal = balance_ratio(bal, hist)
            # the skew puts ~90% of particles in worker 0's flat range
            assert r_flat > 1.5
            assert r_bal < r_flat
            assert abs(r_bal - 1.0) < abs(r_flat - 1.0)
            # bounded: no worker more than ~2x the mean after balancing
            assert r_bal <= 2.0

    def test_balanced_without_histogram_falls_back_to_flat(self):
        assert partition_cells(64, 4, mode="curve-balanced") == partition_cells(
            64, 4, mode="flat"
        )
        zeros = np.zeros(64, np.int64)
        assert partition_cells(
            64, 4, mode="curve-balanced", histogram=zeros
        ) == partition_cells(64, 4, mode="flat")

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_deterministic(self, mode):
        hist = _skewed_histogram(128, 5000)
        a = partition_cells(128, 5, mode=mode, histogram=hist)
        b = partition_cells(128, 5, mode=mode, histogram=hist)
        assert a == b

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            partition_cells(64, 0)
        with pytest.raises(ValueError):
            partition_cells(-1, 2)
        with pytest.raises(ValueError):
            partition_cells(64, 2, mode="zigzag")


class TestBalanceRatio:
    def test_perfect_balance_is_one(self):
        hist = np.full(8, 10, np.int64)
        ranges = partition_cells(8, 4, mode="flat")
        assert balance_ratio(ranges, hist) == pytest.approx(1.0)

    def test_idle_workers_count_as_imbalance(self):
        hist = np.array([100, 0, 0, 0], np.int64)
        ranges = partition_cells(4, 4, mode="flat")
        # one worker has all load, mean divides by 4 -> ratio 4
        assert balance_ratio(ranges, hist) == pytest.approx(4.0)

    def test_empty_histogram_is_one(self):
        ranges = partition_cells(4, 2, mode="flat")
        assert balance_ratio(ranges, np.zeros(4, np.int64)) == 1.0
        assert balance_ratio([], np.array([5])) == 1.0


class TestPartitionRange:
    """Degenerate-case contract of the simulated-OpenMP static split."""

    def test_more_threads_than_items_trails_empties(self):
        ranges = partition_range(3, 8)
        assert len(ranges) == 8
        _coverage_ok(ranges, 3)
        assert [sl.stop - sl.start for sl in ranges[:3]] == [1, 1, 1]
        assert all(sl.stop == sl.start for sl in ranges[3:])

    def test_zero_items(self):
        ranges = partition_range(0, 4)
        assert all(sl.start == 0 and sl.stop == 0 for sl in ranges)

    def test_matches_flat_partition_cells(self):
        assert partition_range(100, 7) == partition_cells(100, 7, mode="flat")


class TestPartitionPlanner:
    def _skew(self, nalloc=64, n=5000):
        return _skewed_histogram(nalloc, n)

    def test_static_modes_never_repartition(self):
        for mode in ("flat", "curve"):
            p = PartitionPlanner(nalloc=64, nparts=4, mode=mode,
                                 repartition_every=1)
            p.initial()
            assert not p.wants_histogram()
            for _ in range(5):
                assert p.maybe_repartition(self._skew()) is None
            assert p.events == []

    def test_every_zero_freezes_partition(self):
        p = PartitionPlanner(nalloc=64, nparts=4, mode="curve-balanced",
                             repartition_every=0)
        first = list(p.initial(self._skew()))
        assert not p.wants_histogram()
        for _ in range(5):
            assert p.maybe_repartition(self._skew()) is None
        assert p.current == first

    def test_repartitions_only_on_cadence(self):
        p = PartitionPlanner(nalloc=64, nparts=4, mode="curve-balanced",
                             repartition_every=3, rebalance_threshold=1.1)
        p.initial()  # flat-equivalent: no histogram yet -> imbalanced
        hist = self._skew()
        assert not p.wants_histogram()  # call 1 is not a multiple of 3
        assert p.maybe_repartition(hist) is None
        assert p.maybe_repartition(hist) is None  # call 2
        assert p.wants_histogram()  # call 3 is due
        moved = p.maybe_repartition(hist)
        assert moved is not None
        assert p.current == moved
        assert len(p.events) == 1
        ev = p.events[0]
        assert ev["call"] == 3
        assert ev["balance_after"] < ev["balance_before"]

    def test_hysteresis_blocks_balanced_repartition(self):
        hist = self._skew()
        p = PartitionPlanner(nalloc=64, nparts=4, mode="curve-balanced",
                             repartition_every=1, rebalance_threshold=1.5)
        p.initial(hist)  # already balanced against this histogram
        assert p.maybe_repartition(hist) is None
        assert p.events == []

    def test_threshold_guard(self):
        uniform = np.full(64, 10, np.int64)
        p = PartitionPlanner(nalloc=64, nparts=4, mode="curve-balanced",
                             repartition_every=1, rebalance_threshold=1.5)
        p.initial()
        # perfectly uniform load never crosses the threshold
        for _ in range(4):
            assert p.maybe_repartition(uniform) is None

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            PartitionPlanner(nalloc=8, nparts=2, mode="bogus")
        with pytest.raises(ValueError):
            PartitionPlanner(nalloc=8, nparts=2, repartition_every=-1)
        with pytest.raises(ValueError):
            PartitionPlanner(nalloc=8, nparts=2, rebalance_threshold=0.5)


class TestBitwiseOwnershipDeposit:
    """Cell-ownership deposit over any partition == serial, bit for bit.

    Uses extreme density skew (90% of particles in one spatial corner)
    under each curve ordering, the combination where the balanced cuts
    diverge most from the flat ones.
    """

    def _skewed_particles(self, ordering, n=6000, seed=42):
        rng = np.random.default_rng(seed)
        ncx, ncy = ordering.ncx, ordering.ncy
        n_hot = int(0.9 * n)
        ix = np.concatenate([
            rng.integers(0, max(1, ncx // 4), size=n_hot),
            rng.integers(0, ncx, size=n - n_hot),
        ])
        iy = np.concatenate([
            rng.integers(0, max(1, ncy // 4), size=n_hot),
            rng.integers(0, ncy, size=n - n_hot),
        ])
        icell = ordering.encode(ix, iy)
        dx = rng.random(n)
        dy = rng.random(n)
        return icell.astype(np.int64), dx, dy

    @pytest.mark.parametrize("curve", ["row-major", "morton", "hilbert"])
    @pytest.mark.parametrize("nworkers", [2, 3, 5, 7])
    def test_bitwise_identity_all_modes(self, curve, nworkers):
        ordering = get_ordering(curve, 16, 16)
        nalloc = ordering.ncells_allocated
        icell, dx, dy = self._skewed_particles(ordering)
        backend = get_backend("numpy")

        rho_ref = np.zeros((nalloc, 4))
        backend.accumulate_redundant(rho_ref, icell, dx, dy, 1.0)

        hist = np.bincount(icell, minlength=nalloc)
        for mode in PARTITION_MODES:
            ranges = partition_cells(nalloc, nworkers, mode=mode,
                                     histogram=hist)
            rho = np.zeros((nalloc, 4))
            for sl in ranges:
                if sl.stop <= sl.start:
                    continue
                mine = np.nonzero((icell >= sl.start) & (icell < sl.stop))[0]
                if mine.size == 0:
                    continue
                backend.accumulate_redundant(
                    rho[sl.start:sl.stop], icell[mine] - sl.start,
                    dx[mine], dy[mine], 1.0,
                )
            assert np.array_equal(rho, rho_ref), (
                f"{mode} partition broke bitwise identity "
                f"({curve}, {nworkers} workers)"
            )

    def test_balanced_beats_flat_on_skew(self):
        ordering = get_ordering("morton", 16, 16)
        icell, _, _ = self._skewed_particles(ordering)
        hist = np.bincount(icell, minlength=ordering.ncells_allocated)
        for nworkers in (2, 3, 5, 7):
            flat = partition_cells(len(hist), nworkers, mode="flat")
            bal = partition_cells(len(hist), nworkers,
                                  mode="curve-balanced", histogram=hist)
            assert balance_ratio(bal, hist) < balance_ratio(flat, hist)

    def test_tiled_dispatcher_bitwise_per_partition(self):
        """The sharded tiled deposit honors the partition kwarg bitwise."""
        from repro.core.deposit import accumulate_redundant_tiled

        ordering = get_ordering("hilbert", 16, 16)
        nalloc = ordering.ncells_allocated
        icell, dx, dy = self._skewed_particles(ordering, n=4000)
        backend = get_backend("numpy")
        rho_ref = np.zeros((nalloc, 4))
        backend.accumulate_redundant(rho_ref, icell, dx, dy, 1.0)
        for mode in PARTITION_MODES:
            rho = np.zeros((nalloc, 4))
            accumulate_redundant_tiled(
                backend, rho, icell, dx, dy, 1.0,
                block_size=64, thresholds=(0.0, 0.0),  # everything sharded
                nthreads=3, partition=mode,
            )
            assert np.array_equal(rho, rho_ref)


class TestNumpyMpPartitionIntegration:
    """Real worker-pool runs: partition modes bitwise vs serial numpy."""

    pytestmark = pytest.mark.skipif(
        not pytest.importorskip(
            "repro.parallel.executor"
        ).MultiprocessBackend.is_available(),
        reason="POSIX shared memory / multiprocessing unavailable",
    )

    N, STEPS = 2000, 6

    def _run(self, backend, **cfg_kw):
        cfg = OptimizationConfig(
            backend=backend, particle_layout="soa", field_layout="redundant",
            loop_mode="split", sort_period=3, **cfg_kw,
        )
        grid = GridSpec(16, 16)
        sim = Simulation(grid, GaussianBump(), self.N, cfg, dt=0.05, seed=7)
        sim.run(self.STEPS)
        st = sim.stepper
        state = {
            "rho": st.rho_grid.copy(),
            "ex": st.ex_grid.copy(),
            "vx": st.particles.vx.copy(),
            "icell": st.particles.icell.copy(),
        }
        return state, sim

    @pytest.mark.parametrize("partition", PARTITION_MODES)
    def test_partition_modes_bitwise_vs_serial(self, partition):
        ref, _ = self._run("numpy")
        got, sim = self._run(
            "numpy-mp", workers=3, partition=partition,
            repartition_every=2, rebalance_threshold=1.05,
        )
        for key in ref:
            assert np.array_equal(ref[key], got[key]), (
                f"{key} diverged under partition={partition}"
            )
        dm = sim.instrumentation.timings.datamove
        assert dm.get("samples", 0) >= 1
        last = dm["last"]
        assert last["mode"] == partition
        assert last["particles"] == self.N
        assert last["total_bytes"] > 0
        assert set(last["per_worker"]) == {"worker0", "worker1", "worker2"}

    def test_curve_balanced_repartitions_on_skew(self):
        _, sim = self._run(
            "numpy-mp", workers=3, partition="curve-balanced",
            repartition_every=2, rebalance_threshold=1.05,
        )
        planner = get_backend("numpy-mp").engine_for(sim.stepper).planner
        assert planner.mode == "curve-balanced"
        # the bump keeps the load skewed enough to trip the threshold
        assert len(planner.events) >= 1
        dm = sim.instrumentation.timings.datamove
        assert dm["last"].get("repartitions", 0) == len(planner.events)


class TestDepositMovement:
    def test_ledger_accounts_every_particle_and_cell(self):
        nalloc, nworkers = 64, 4
        hist = _skewed_histogram(nalloc, 3000)
        ranges = partition_cells(nalloc, nworkers, mode="flat")
        stats = deposit_movement(ranges, hist, mode="flat")
        assert stats["mode"] == "flat"
        assert stats["particles"] == int(hist.sum())
        per = stats["per_worker"]
        assert sum(w["particles"] for w in per.values()) == int(hist.sum())
        assert sum(w["cells"] for w in per.values()) == nalloc
        # every worker scans every key: bytes >= n_total * 8 each
        assert all(w["bytes"] >= int(hist.sum()) * 8 for w in per.values())
        assert stats["total_bytes"] == sum(w["bytes"] for w in per.values())
        assert stats["balance_ratio"] == pytest.approx(
            balance_ratio(ranges, hist)
        )

    def test_bbox_span_and_overlap_with_ordering(self):
        ordering = get_ordering("morton", 8, 8)
        nalloc = ordering.ncells_allocated
        hist = np.ones(nalloc, np.int64)
        ranges = partition_cells(nalloc, 4, mode="curve")
        stats = deposit_movement(ranges, hist, mode="curve",
                                 ordering=ordering)
        assert "bbox_overlap_cells" in stats
        for w in stats["per_worker"].values():
            if w["cells"]:
                assert "bbox" in w and "span_ratio" in w
                assert w["span_ratio"] >= 1.0
        # pow2-aligned Morton quadrants are compact and disjoint
        assert all(
            w["span_ratio"] == pytest.approx(1.0)
            for w in stats["per_worker"].values()
        )
        assert stats["bbox_overlap_cells"] == 0

    def test_json_serializable(self):
        hist = _skewed_histogram(32, 500)
        ranges = partition_cells(32, 3, mode="curve-balanced", histogram=hist)
        stats = deposit_movement(ranges, hist, mode="curve-balanced",
                                 ordering=get_ordering("hilbert", 8, 4))
        json.dumps(stats)  # must not raise

    def test_rusage_sample_shape(self):
        sample = rusage_sample()
        if sample is None:
            pytest.skip("resource module unavailable")
        for row in ("self", "children"):
            assert set(sample[row]) == {
                "minflt", "majflt", "nvcsw", "nivcsw", "maxrss_kb"
            }


class TestCalibration:
    def _record(self):
        return {
            "cumulative": {
                "particle_steps": 1_000_000,
                "steps": 50,
                "update_v": 0.030,
                "update_x": 0.012,
                "accumulate": 0.040,
            }
        }

    def test_fit_is_deterministic(self):
        a = fit_stall_overlap(self._record())
        b = fit_stall_overlap(self._record())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_fit_output_shape(self):
        cal = fit_stall_overlap(self._record())
        assert 0.0 <= cal["stall_overlap"] <= 1.0
        assert cal["freq_scale"] > 0
        assert np.isfinite(cal["residual_rms_s"])
        assert cal["particle_steps"] == 1_000_000
        assert set(cal["loops"]) == {"update_v", "update_x", "accumulate"}
        for row in cal["loops"].values():
            assert row["modeled_s"] > 0
        assert cal["misses_assumed"] == {
            k: dict(v) for k, v in DEFAULT_CALIBRATION_MISSES.items()
        }

    def test_accepts_bare_steptimings_record(self):
        bare = self._record()["cumulative"]
        cal = fit_stall_overlap(bare)
        assert cal["steps"] == 50

    def test_rejects_empty_records(self):
        with pytest.raises(ValueError):
            fit_stall_overlap({"cumulative": {"particle_steps": 0}})
        with pytest.raises(ValueError):
            fit_stall_overlap({"cumulative": {"particle_steps": 100}})


class TestDatamoveTimingsRoundTrip:
    def test_step_timings_datamove_survives_json(self):
        t = StepTimings()
        t.steps = 3
        t.datamove = {
            "samples": 2,
            "last": {"mode": "curve-balanced", "particles": 500,
                     "total_bytes": 123456, "balance_ratio": 1.25},
        }
        text = json.dumps(t.as_record())
        back = StepTimings.from_json(text)
        assert back.datamove == t.datamove

    def test_default_is_empty_dict(self):
        t = StepTimings()
        assert t.datamove == {}
        back = StepTimings.from_json(json.dumps(t.as_record()))
        assert back.datamove == {}
