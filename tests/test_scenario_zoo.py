"""Tests for the scenario zoo: bounded-wall, beam-plasma, E×B drift.

Three layers per scenario:

* **initializer structure** — the sampled phase space has the shape the
  case advertises (slab support, beam fraction, drift attributes);
* **stepper semantics** — the zoo attributes (reflecting boundary,
  ``bz`` rotation, external drive field) reach the stepper, force the
  split loop path, and produce the right short-horizon physics
  (confinement, measurable E×B drift) at tier-1 cost;
* **verification hooks** — each case has a configspace row, a golden
  digest under the gate, and a CLI spelling; the full calibrated
  oracles run under the ``verify_full`` marker.
"""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.stepper import PICStepper
from repro.grid.spec import GridSpec
from repro.particles.initializers import (
    BeamPlasma,
    BoundedPlasma,
    MagnetizedExB,
)
from repro.verify.configspace import _CASE_POOL, Scenario
from repro.verify.golden import golden_cases, default_golden_dir


def _grid(ncx=32, ncy=8):
    return GridSpec(ncx, ncy, xmax=4 * np.pi, ymax=2 * np.pi)


def _config(**overrides):
    params = dict(
        field_layout="redundant", ordering="morton", loop_mode="split",
        position_update="bitwise", hoisting=True, sort_period=0,
        backend="numpy",
    )
    params.update(overrides)
    return OptimizationConfig(**params)


# ----------------------------------------------------------------------
# Initializers
# ----------------------------------------------------------------------
class TestInitializers:
    def test_bounded_plasma_samples_central_slab(self):
        grid = _grid()
        case = BoundedPlasma(slab_frac=0.5)
        x, y, vx, vy = case.sample(4000, grid, quiet=True)
        center = 0.5 * (grid.xmin + grid.xmax)
        half = 0.25 * grid.lx
        assert np.all(np.abs(x - center) <= half + 1e-12)
        assert case.boundary == "reflecting"

    def test_bounded_plasma_rejects_bad_slab(self):
        with pytest.raises(ValueError):
            BoundedPlasma(slab_frac=0.0)

    def test_beam_plasma_beam_fraction(self):
        grid = GridSpec(64, 16, xmax=10 * np.pi, ymax=2 * np.pi)
        case = BeamPlasma(n_beam=0.1, v_beam=5.0)
        x, y, vx, vy = case.sample(20_000, grid, quiet=True)
        fast = np.count_nonzero(vx > 0.5 * case.v_beam)
        assert abs(fast / 20_000 - case.n_beam) < 0.02

    def test_exb_drift_attributes(self):
        case = MagnetizedExB(ex0=0.2, bz=1.0)
        assert case.ext_e == (0.2, 0.0)
        assert case.drift_velocity == (0.0, -0.2)
        with pytest.raises(ValueError):
            MagnetizedExB(bz=0.0)

    def test_default_grids_are_pow2(self):
        for case in (BoundedPlasma(), BeamPlasma(), MagnetizedExB()):
            assert case.default_grid().pow2


# ----------------------------------------------------------------------
# Stepper semantics
# ----------------------------------------------------------------------
class TestStepperSemantics:
    def test_zoo_cases_force_split_path(self):
        """Reflecting/magnetized/driven cases cannot run the fused
        sweep — the stepper must silently fall back to split."""
        grid = _grid()
        for case in (BoundedPlasma(), MagnetizedExB()):
            s = PICStepper(grid, _config(loop_mode="fused"), case=case,
                           n_particles=300, seed=0, quiet=True)
            try:
                assert s._select_loop_path() == "split"
            finally:
                s.close()

    def test_plain_case_attributes_default_to_periodic(self):
        from repro.particles.initializers import LandauDamping

        s = PICStepper(_grid(), _config(), case=LandauDamping(alpha=0.1),
                       n_particles=200, seed=0, quiet=True)
        try:
            assert s.boundary == "periodic"
            assert s.bz == 0.0 and s.ext_e == (0.0, 0.0)
        finally:
            s.close()

    def test_unknown_boundary_rejected(self):
        class Bad:
            boundary = "open"

            def sample(self, n, grid, rng=None, quiet=False):
                raise AssertionError("validation must precede sampling")

        with pytest.raises(ValueError):
            PICStepper(_grid(), _config(), case=Bad(),
                       n_particles=10, seed=0, quiet=True)

    def test_reflecting_walls_confine(self):
        """A bounded slab must stay centered; nothing leaks or wraps."""
        grid = _grid()
        s = PICStepper(grid, _config(), case=BoundedPlasma(),
                       n_particles=3000, seed=0, quiet=True)
        try:
            s.run(40)
            assert s.boundary == "reflecting"
            p = s.particles
            x = (np.asarray(p.ix) + np.asarray(p.dx)) * grid.dx
            center = 0.5 * (grid.xmin + grid.xmax)
            assert abs(float(np.mean(x)) - center) / grid.lx < 0.05
            assert np.all(np.isfinite(np.asarray(p.vx)))
        finally:
            s.close()

    def test_exb_drift_measurable_after_one_gyroperiod(self):
        """Short-horizon drift check (the full 4-period oracle is
        ``verify_full``): mean vy over one gyroperiod ≈ -ex0/bz."""
        case = MagnetizedExB(vth=0.5, bz=1.0, ex0=0.2)
        grid = GridSpec(32, 32, xmax=4 * np.pi, ymax=4 * np.pi)
        s = PICStepper(grid, _config(), case=case, n_particles=4000,
                       dt=0.05, seed=0, quiet=True)
        try:
            assert s.bz == 1.0 and s.ext_e == (0.2, 0.0)
            period_steps = int(round(2 * np.pi * s.m / abs(s.q * s.bz) / s.dt))
            vy_means = []
            for _ in range(period_steps):
                s.step()
                vy_means.append(float(np.mean(s.physical_velocities()[1])))
            drift = float(np.mean(vy_means))
            assert abs(drift - case.drift_velocity[1]) < 0.05
        finally:
            s.close()


# ----------------------------------------------------------------------
# Verification hooks
# ----------------------------------------------------------------------
class TestVerificationHooks:
    def test_zoo_cases_in_configspace_pool(self):
        for name in ("bounded-wall", "beam-plasma", "exb-drift"):
            assert name in _CASE_POOL

    def test_zoo_scenarios_constructible(self):
        for name in ("bounded-wall", "beam-plasma", "exb-drift"):
            s = Scenario(
                index=0, ncx=16, ncy=8, n_particles=500, n_steps=4,
                case_name=name, ordering="morton", field_layout="redundant",
                loop_mode="split", position_update="bitwise", hoisting=True,
                sort_period=0, sort_variant="out-of-place", chunk_size=8192,
            )
            assert s.case() is not None

    def test_zoo_and_bump_golden_digests_committed(self):
        cases = golden_cases()
        for name in ("gaussian_bump", "bounded_wall", "beam_plasma",
                     "exb_drift"):
            assert name in cases
            assert (default_golden_dir() / f"GOLDEN_{name}.json").exists()

    def test_cli_spells_zoo_cases(self):
        from repro.cli import _CASES

        for name in ("bounded-wall", "beam-plasma", "exb-drift"):
            assert name in _CASES

    def test_oracles_exported(self):
        from repro.verify import oracles

        for fn in ("bump_on_tail_oracle", "beam_plasma_oracle",
                   "bounded_plasma_oracle", "exb_drift_oracle"):
            assert fn in oracles.__all__ and callable(getattr(oracles, fn))


class TestZooOraclesFull:
    """The calibrated acceptance oracles — minutes each, so they sit
    behind the ``verify_full`` marker with ``run_all_oracles``."""

    @pytest.mark.verify_full
    def test_bounded_plasma_oracle_passes(self):
        from repro.verify.oracles import bounded_plasma_oracle

        result = bounded_plasma_oracle("numpy")
        assert result.passed, result.describe()

    @pytest.mark.verify_full
    def test_beam_plasma_oracle_passes(self):
        from repro.verify.oracles import beam_plasma_oracle

        result = beam_plasma_oracle("numpy")
        assert result.passed, result.describe()
        assert result.measured > 0.1

    @pytest.mark.verify_full
    def test_bump_on_tail_oracle_passes(self):
        from repro.verify.oracles import bump_on_tail_oracle

        result = bump_on_tail_oracle("numpy")
        assert result.passed, result.describe()
        assert result.measured > 0.05

    @pytest.mark.verify_full
    def test_exb_drift_oracle_passes(self):
        from repro.verify.oracles import exb_drift_oracle

        result = exb_drift_oracle("numpy")
        assert result.passed, result.describe()
