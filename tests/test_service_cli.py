"""Tests for the service front-ends: the spool protocol, the
``repro serve`` / ``repro submit`` CLI pair, and the link-checker's
anchor validation (the docs half of the service PR)."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.cli import build_parser, main
from repro.service import (
    PICJob,
    read_result,
    serve_spool,
    submit_to_spool,
    wait_for_result,
)

REPO = pathlib.Path(__file__).resolve().parent.parent


def fast_args(**overrides):
    base = dict(grid=(16, 16), n_particles=1500, steps=12, backend="numpy")
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# Spool protocol
# ----------------------------------------------------------------------
class TestSpool:
    def test_round_trip(self, tmp_path):
        spool = tmp_path / "spool"
        a = submit_to_spool(spool, PICJob(**fast_args()))
        b = submit_to_spool(spool, PICJob(**fast_args(case="two-stream",
                                                      priority=4)))
        assert read_result(spool, a) is None
        settled = serve_spool(spool, max_workers=2, drain=True, poll=0.05)
        assert settled == 2
        doc_a = read_result(spool, a)
        doc_b = read_result(spool, b)
        assert doc_a["state"] == "succeeded" and doc_b["state"] == "succeeded"
        assert doc_a["steps_done"] == 12
        assert doc_a["energy_drift"] is not None
        assert len(doc_a["series"]["times"]) == 13
        assert "timings" in doc_a and "engine" in doc_a
        # spool hygiene: queue and claimed both drained
        assert not list((spool / "queue").glob("*.json"))
        assert not list((spool / "claimed").glob("*.json"))

    def test_wait_for_result_timeout(self, tmp_path):
        spool = tmp_path / "spool"
        jid = submit_to_spool(spool, PICJob(**fast_args()))
        with pytest.raises(TimeoutError):
            wait_for_result(spool, jid, timeout=0.2, poll=0.05)

    def test_unparsable_document_rejected_not_fatal(self, tmp_path):
        spool = tmp_path / "spool"
        good = submit_to_spool(spool, PICJob(**fast_args(steps=6)))
        (spool / "queue" / "garbage.json").write_text("{not json")
        (spool / "queue" / "badjob.json").write_text(
            json.dumps({"id": "badjob", "job": {"case": "nope"}}))
        settled = serve_spool(spool, max_workers=1, drain=True, poll=0.05)
        assert settled == 1
        assert read_result(spool, good)["state"] == "succeeded"
        rejected = {p.name for p in (spool / "claimed").glob("*.rejected")}
        assert rejected == {"garbage.rejected", "badjob.rejected"}

    def test_failed_job_settles_with_error(self, tmp_path):
        spool = tmp_path / "spool"
        # 12x12 cannot build a Morton ordering: permanent build failure
        jid = submit_to_spool(spool, PICJob(**fast_args(grid=(12, 12))))
        serve_spool(spool, max_workers=1, drain=True, poll=0.05)
        doc = read_result(spool, jid)
        assert doc["state"] == "failed"
        assert doc["error"]

    def test_max_jobs_limits_claims(self, tmp_path):
        spool = tmp_path / "spool"
        for _ in range(3):
            submit_to_spool(spool, PICJob(**fast_args(steps=5)))
        settled = serve_spool(spool, max_workers=1, drain=True,
                              max_jobs=2, poll=0.05)
        assert settled == 2
        assert len(list((spool / "queue").glob("*.json"))) == 1


# ----------------------------------------------------------------------
# CLI: parsing and end-to-end
# ----------------------------------------------------------------------
class TestServiceCLI:
    def test_parser_accepts_serve_and_submit(self):
        p = build_parser()
        a = p.parse_args(["serve", "--spool", "/tmp/x", "--drain",
                          "--max-workers", "3", "--max-jobs", "5"])
        assert a.command == "serve" and a.max_workers == 3 and a.drain
        b = p.parse_args(["submit", "--spool", "/tmp/x", "--case",
                          "two-stream", "--priority", "7", "--wait",
                          "--timeout", "30"])
        assert b.command == "submit" and b.priority == 7 and b.wait

    def test_submit_then_serve_then_wait(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        rc = main(["submit", "--spool", spool, "--case", "landau",
                   "--grid", "16", "16", "--particles", "1500",
                   "--steps", "10", "--job-id", "cli-a"])
        assert rc == 0
        assert "submitted cli-a" in capsys.readouterr().out
        rc = main(["serve", "--spool", spool, "--max-workers", "1",
                   "--drain", "--poll", "0.05"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "settled cli-a: succeeded 10/10" in out
        assert "served 1 job(s)" in out
        # --wait on an already-settled job returns its summary
        rc = main(["submit", "--spool", spool, "--job-id", "cli-a",
                   "--wait", "--timeout", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "result   : succeeded" in out

    def test_submit_validation_error_is_exit_2(self, tmp_path, capsys):
        rc = main(["submit", "--spool", str(tmp_path / "s"),
                   "--steps", "0"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_parser_accepts_durability_flags(self):
        p = build_parser()
        a = p.parse_args(["serve", "--spool", "/tmp/x", "--recover",
                          "--data-dir", "/tmp/d", "--lease-ttl", "5",
                          "--owner", "me", "--gc-older-than", "2h",
                          "--gc-every", "10"])
        assert a.recover and a.lease_ttl == 5.0 and a.owner == "me"
        assert a.gc_older_than == "2h" and a.gc_every == 10
        b = p.parse_args(["submit", "--spool", "/tmp/x",
                          "--deadline", "30", "--retry-backoff", "0.5",
                          "--max-retries", "5"])
        assert b.deadline == 30.0 and b.retry_backoff == 0.5
        assert b.max_retries == 5
        c = p.parse_args(["spool", "gc", "--spool", "/tmp/x",
                          "--older-than", "1d"])
        assert c.command == "spool" and c.spool_command == "gc"
        assert c.older_than == "1d"

    def test_serve_recover_without_data_dir_is_exit_2(self, tmp_path,
                                                      capsys):
        rc = main(["serve", "--spool", str(tmp_path / "s"), "--recover",
                   "--drain"])
        assert rc == 2
        assert "data-dir" in capsys.readouterr().err

    def test_spool_gc_end_to_end(self, tmp_path, capsys):
        import os
        import time as _time

        from repro.service import write_json_atomic
        from repro.service.spool import spool_dirs

        _, _, results = spool_dirs(tmp_path)
        write_json_atomic(results / "old.json", {"state": "succeeded"})
        stamp = _time.time() - 7200
        os.utime(results / "old.json", (stamp, stamp))
        write_json_atomic(results / "new.json", {"state": "succeeded"})
        rc = main(["spool", "gc", "--spool", str(tmp_path),
                   "--older-than", "1h"])
        assert rc == 0
        assert "removed 1" in capsys.readouterr().out
        assert not (results / "old.json").exists()
        assert (results / "new.json").exists()

    def test_spool_gc_bad_age_is_exit_2(self, tmp_path, capsys):
        rc = main(["spool", "gc", "--spool", str(tmp_path),
                   "--older-than", "whenever"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# check_links: anchor-fragment validation
# ----------------------------------------------------------------------
def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "tools" / "check_links.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCheckLinksAnchors:
    @pytest.fixture(scope="class")
    def cl(self):
        return _load_check_links()

    def test_duplicate_heading_suffixes(self, cl):
        slugs = cl.slug_sequence(["Knobs", "Other", "Knobs", "Knobs"])
        assert slugs == {"knobs", "other", "knobs-1", "knobs-2"}

    def test_anchor_checking_end_to_end(self, cl, tmp_path, monkeypatch):
        page = tmp_path / "page.md"
        page.write_text(
            "# Title\n## Knobs\n## Knobs\n"
            "[ok](#knobs)\n[ok2](#knobs-1)\n[bad](#knobs-2)\n"
            "[ok3](other.md#there)\n[bad2](other.md#missing)\n"
        )
        (tmp_path / "other.md").write_text("# There\n")
        monkeypatch.setattr(cl, "REPO", tmp_path)
        errors = cl.check_file(page)
        assert len(errors) == 2
        assert any("#knobs-2" in e for e in errors)
        assert any("#missing" in e for e in errors)

    def test_code_fences_ignored(self, cl, tmp_path, monkeypatch):
        page = tmp_path / "page.md"
        page.write_text(
            "# Title\n```md\n[fake](#nowhere)\n## Fake Heading\n```\n"
            "[real](#title)\n")
        monkeypatch.setattr(cl, "REPO", tmp_path)
        assert cl.check_file(page) == []

    def test_repo_docs_have_no_broken_links(self, cl):
        """The committed docs must pass the checker (mirrors
        ``make docs-check`` so the failure shows up in pytest too)."""
        errors = []
        for pattern in cl.DOC_GLOBS:
            for path in sorted(cl.REPO.glob(pattern)):
                errors.extend(cl.check_file(path))
        assert errors == []
