"""Trace-generator tests: address maps and per-loop access sets."""

import numpy as np
import pytest

from repro.core import OptimizationConfig
from repro.curves import get_ordering
from repro.particles import make_storage
from repro.perf.trace import (
    MemoryLayoutMap,
    trace_accumulate,
    trace_fused_loop,
    trace_update_positions,
    trace_update_velocities,
)
from tests.conftest import random_particle_arrays

NCX = NCY = 16


@pytest.fixture
def ordering():
    return get_ordering("morton", NCX, NCY)


def particles_for(rng, layout="soa", n=64, store_coords=True, ordering=None):
    ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, n, NCX, NCY)
    s = make_storage(layout, n, store_coords=store_coords)
    icell = ordering.encode(ix, iy)
    if store_coords:
        s.set_state(icell, dx, dy, vx, vy, ix, iy)
    else:
        s.set_state(icell, dx, dy, vx, vy)
    return s


class TestMemoryLayoutMap:
    def test_soa_bases_distinct_and_spaced(self):
        m = MemoryLayoutMap(1000, "soa", True, "redundant", 256, NCX, NCY)
        idx = np.array([0])
        bases = {
            a: int(m.particle_attr_addrs(a, idx)[0])
            for a in ("icell", "dx", "vx", "iy")
        }
        vals = sorted(bases.values())
        assert all(b - a >= 4 * 1024 * 1024 for a, b in zip(vals, vals[1:]))

    def test_soa_attr_stride_8(self):
        m = MemoryLayoutMap(100, "soa", True, "redundant", 256, NCX, NCY)
        a = m.particle_attr_addrs("dx", np.array([0, 1, 2]))
        np.testing.assert_array_equal(np.diff(a), [8, 8])

    def test_aos_attr_stride_record(self):
        m = MemoryLayoutMap(100, "aos", True, "redundant", 256, NCX, NCY)
        a = m.particle_attr_addrs("dx", np.array([0, 1]))
        assert a[1] - a[0] == 56
        b = m.particle_attr_addrs("dy", np.array([0]))
        assert b[0] - a[0] == 8  # dy sits one field after dx in the record

    def test_e_row_64_bytes(self):
        m = MemoryLayoutMap(10, "soa", True, "redundant", 256, NCX, NCY)
        a = m.e_row_addrs(np.array([0, 1, 5]))
        np.testing.assert_array_equal(np.diff(a), [64, 256])

    def test_rho_row_32_bytes(self):
        m = MemoryLayoutMap(10, "soa", True, "redundant", 256, NCX, NCY)
        a = m.rho_row_addrs(np.array([0, 1]))
        assert a[1] - a[0] == 32

    def test_grid_point_addrs_row_major(self):
        m = MemoryLayoutMap(10, "soa", True, "standard", 0, NCX, NCY)
        a = m.grid_point_addrs("ex", np.array([1]), np.array([2]))
        b = m.grid_point_addrs("ex", np.array([0]), np.array([0]))
        assert a[0] - b[0] == 8 * (NCY + 2)

    def test_for_config(self, ordering):
        cfg = OptimizationConfig.fully_optimized()
        m = MemoryLayoutMap.for_config(cfg, ordering, 500)
        assert m.field_layout == "redundant"
        assert m.ncells_allocated == ordering.ncells_allocated


class TestTraceShapes:
    def test_update_v_redundant_addresses_per_particle(self, rng, ordering):
        p = particles_for(rng, ordering=ordering)
        m = MemoryLayoutMap(p.n, "soa", True, "redundant", 256, NCX, NCY)
        t = trace_update_velocities(p, m, ordering)
        assert len(t) == p.n * 6  # icell,dx,dy + E row + vx,vy

    def test_update_v_standard_addresses_per_particle(self, rng, ordering):
        p = particles_for(rng, ordering=ordering)
        m = MemoryLayoutMap(p.n, "soa", True, "standard", 0, NCX, NCY)
        t = trace_update_velocities(p, m, ordering)
        assert len(t) == p.n * (3 + 8 + 2)

    def test_update_x_sequential_only(self, rng, ordering):
        p = particles_for(rng, ordering=ordering)
        m = MemoryLayoutMap(p.n, "soa", True, "redundant", 256, NCX, NCY)
        t = trace_update_positions(p, m, ordering)
        assert len(t) == p.n * 7
        # strictly per-particle interleaved: every 7-address block is
        # one particle's attributes, each 8 bytes past the previous
        blocks = t.reshape(p.n, 7)
        np.testing.assert_array_equal(np.diff(blocks, axis=0), 8)

    def test_accumulate_redundant(self, rng, ordering):
        p = particles_for(rng, ordering=ordering)
        m = MemoryLayoutMap(p.n, "soa", True, "redundant", 256, NCX, NCY)
        t = trace_accumulate(p, m, ordering)
        assert len(t) == p.n * 4

    def test_accumulate_standard_corners(self, rng, ordering):
        p = particles_for(rng, ordering=ordering)
        m = MemoryLayoutMap(p.n, "soa", True, "standard", 0, NCX, NCY)
        t = trace_accumulate(p, m, ordering)
        assert len(t) == p.n * (3 + 4)

    def test_fused_superset_of_split(self, rng, ordering):
        p = particles_for(rng, ordering=ordering)
        m = MemoryLayoutMap(p.n, "soa", True, "redundant", 256, NCX, NCY)
        fused = set(trace_fused_loop(p, m, ordering).tolist())
        for tracer in (trace_update_velocities, trace_accumulate):
            assert set(tracer(p, m, ordering).tolist()) <= fused

    def test_field_addresses_follow_icell(self, rng, ordering):
        p = particles_for(rng, ordering=ordering)
        m = MemoryLayoutMap(p.n, "soa", True, "redundant", 256, NCX, NCY)
        t = trace_update_velocities(p, m, ordering).reshape(p.n, 6)
        expected = m.e_row_addrs(np.asarray(p.icell))
        np.testing.assert_array_equal(t[:, 3], expected)

    def test_standard_wraps_corner_addresses(self, ordering):
        # a particle in the last cell must touch grid point (0, 0)
        s = make_storage("soa", 1, store_coords=True)
        s.set_state(
            ordering.encode(np.array([NCX - 1]), np.array([NCY - 1])),
            np.array([0.5]), np.array([0.5]), np.zeros(1), np.zeros(1),
            np.array([NCX - 1]), np.array([NCY - 1]),
        )
        m = MemoryLayoutMap(1, "soa", True, "standard", 0, NCX, NCY)
        t = trace_accumulate(s, m, ordering)
        origin = int(m.grid_point_addrs("rho", np.array([0]), np.array([0]))[0])
        assert origin in t.tolist()

    def test_aos_trace_uses_record_addresses(self, rng, ordering):
        p = particles_for(rng, layout="aos", ordering=ordering)
        m = MemoryLayoutMap(p.n, "aos", True, "redundant", 256, NCX, NCY)
        t = trace_update_positions(p, m, ordering).reshape(p.n, 7)
        # all 7 attributes of one particle live within one 56-byte record
        spread = t.max(axis=1) - t.min(axis=1)
        assert spread.max() < 56
