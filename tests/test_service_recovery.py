"""Tests for durable service recovery (`repro.service` + resilience).

Covers the durability PR end to end: the append-only job journal and
its torn-tail-tolerant replay, `JobEngine.recover` resuming parked
jobs bitwise-identically, lease-based spool claims and stale-claim
reclaim, wall-clock deadlines and retry backoff, spool retention gc,
torn-document readers, duplicate-submission settling, and the
graceful-drain exit path of ``repro serve``.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.resilience import (
    DeadlineExceededError,
    FaultInjector,
    SupervisedRun,
    lease_clock_skew,
)
from repro.service import (
    JobClient,
    JobEngine,
    JobJournal,
    JobState,
    PICJob,
    gc_spool,
    parse_age,
    read_result,
    reclaim_stale,
    serve_spool,
    submit_to_spool,
    wait_for_result,
    write_json_atomic,
)
from repro.service.journal import read_json_tolerant
from repro.service.spool import spool_dirs

REPO = pathlib.Path(__file__).resolve().parent.parent


def small_job(**overrides) -> PICJob:
    base = dict(case="landau", grid=(16, 16), n_particles=1500, steps=20,
                dt=0.05, backend="numpy", checkpoint_every=8, seed=11)
    base.update(overrides)
    return PICJob(**base)


def clean_history(job: PICJob):
    """The uninterrupted run of ``job`` — the bitwise reference."""
    sim = job.build_simulation()
    sim.run(job.steps)
    return sim.history


# ----------------------------------------------------------------------
# Journal: append, torn-tail replay, atomic document helpers
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.append("submitted", job_id="a", seq=1, priority=0,
                       job={"case": "landau"})
        journal.append("running", job_id="a", segment=1, resumed=False)
        records = JobJournal.read_records(journal.path)
        assert [r["event"] for r in records] == ["submitted", "running"]
        assert all("ts" in r for r in records)

    def test_torn_tail_stops_replay_without_raising(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append("submitted", job_id="a", seq=1, priority=0, job={})
        journal.append("terminal", job_id="a", state="succeeded")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "submitted", "job_id": "b", "jo')  # torn
        records = JobJournal.read_records(path)
        assert [r["event"] for r in records] == ["submitted", "terminal"]
        assert JobJournal.replay(path)["a"]["state"] == "succeeded"

    def test_replay_folds_lifecycle(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append("submitted", job_id="a", seq=1, priority=2,
                       job={"case": "landau"})
        journal.append("running", job_id="a", segment=1, resumed=False)
        journal.append("preempted", job_id="a", iteration=8,
                       checkpoint="ckpt-000008.npz")
        view = JobJournal.replay(path)
        assert view["a"]["state"] == "preempted"
        assert view["a"]["iteration"] == 8
        assert view["a"]["checkpoint"] == "ckpt-000008.npz"
        assert view["a"]["priority"] == 2
        journal.append("recovered", job_id="a", resumed=True)
        assert JobJournal.replay(path)["a"]["state"] == "queued"
        journal.append("terminal", job_id="a", state="failed", retries=2)
        view = JobJournal.replay(path)
        assert view["a"]["state"] == "failed" and view["a"]["retries"] == 2

    def test_replay_ignores_events_without_submission(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append("running", job_id="ghost", segment=1)
        journal.append("terminal", job_id="ghost", state="succeeded")
        assert JobJournal.replay(path) == {}

    def test_missing_journal_is_empty(self, tmp_path):
        assert JobJournal.read_records(tmp_path / "nope.jsonl") == []
        assert JobJournal.replay(tmp_path / "nope.jsonl") == {}

    def test_write_json_atomic_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "doc.json"
        write_json_atomic(target, {"x": 1})
        assert json.loads(target.read_text()) == {"x": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_read_json_tolerant(self, tmp_path):
        good = tmp_path / "good.json"
        write_json_atomic(good, {"ok": True})
        assert read_json_tolerant(good) == {"ok": True}
        torn = tmp_path / "torn.json"
        torn.write_text('{"ok": tru')
        assert read_json_tolerant(torn) is None
        assert read_json_tolerant(tmp_path / "missing.json") is None
        scalar = tmp_path / "scalar.json"
        scalar.write_text("42")
        assert read_json_tolerant(scalar) is None


# ----------------------------------------------------------------------
# Engine recovery: the tentpole
# ----------------------------------------------------------------------
class TestEngineRecovery:
    def test_recover_from_empty_data_dir(self, tmp_path):
        with JobEngine.recover(tmp_path, max_workers=1) as engine:
            assert engine.list_jobs() == []
            assert engine.stats.recovered == 0

    def test_preempt_close_recover_is_bitwise_identical(self, tmp_path):
        job = small_job(steps=200, checkpoint_every=25)
        clean = clean_history(job)
        with JobEngine(max_workers=1, data_dir=tmp_path) as engine:
            job_id = engine.submit(job)
            # wait for the first checkpoint, then close mid-run: the
            # engine's shutdown parks the job (journal: "preempted")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if engine.status(job_id).steps_done >= job.checkpoint_every:
                    break
                time.sleep(0.005)
        assert not engine.status(job_id).state.terminal

        with JobEngine.recover(tmp_path, max_workers=1) as engine:
            assert engine.stats.recovered == 1
            result = engine.result(job_id, timeout=60)
            assert result.state is JobState.SUCCEEDED
            assert result.steps_done == job.steps
            assert result.history.times == clean.times
            assert result.history.field_energy == clean.field_energy
            assert result.history.kinetic_energy == clean.kinetic_energy
            assert result.history.mode_amplitude == clean.mode_amplitude
            # the interrupted job actually resumed rather than restarting
            assert engine.status(job_id).state is JobState.SUCCEEDED

    def test_recover_without_checkpoints_restarts_fresh(self, tmp_path):
        job = small_job(steps=12, checkpoint_every=50)  # never checkpoints
        clean = clean_history(job)
        engine = JobEngine(max_workers=1, data_dir=tmp_path, autostart=False)
        job_id = engine.submit(job)
        engine.close()  # queued, never ran: journal says "submitted"
        with JobEngine.recover(tmp_path, max_workers=1) as engine:
            result = engine.result(job_id, timeout=60)
            assert result.state is JobState.SUCCEEDED
            assert result.history.field_energy == clean.field_energy

    def test_recover_skips_terminal_jobs(self, tmp_path):
        job = small_job(steps=6, checkpoint_every=50)
        with JobEngine(max_workers=1, data_dir=tmp_path) as engine:
            job_id = engine.submit(job)
            engine.result(job_id, timeout=60)
        with JobEngine.recover(tmp_path, max_workers=1) as engine:
            assert engine.list_jobs() == []
            assert engine.stats.recovered == 0
        # a "shutdown" record marks both clean closes
        events = [r["event"]
                  for r in JobJournal.read_records(tmp_path / "journal.jsonl")]
        assert events.count("shutdown") == 2

    def test_client_recover_facade(self, tmp_path):
        job = small_job(steps=6, checkpoint_every=50)
        engine = JobEngine(max_workers=1, data_dir=tmp_path, autostart=False)
        job_id = engine.submit(job)
        engine.close()
        with JobClient.recover(tmp_path, max_workers=1) as client:
            handles = client.handles()
            assert [h.job_id for h in handles] == [job_id]
            assert handles[0].result(timeout=60).state is JobState.SUCCEEDED


# ----------------------------------------------------------------------
# Deadlines and retry backoff
# ----------------------------------------------------------------------
class TestDeadlinesAndBackoff:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            small_job(deadline_s=0.0)
        with pytest.raises(ValueError):
            small_job(retry_backoff=-1.0)
        job = small_job(deadline_s=5.0, retry_backoff=0.5)
        assert PICJob.from_dict(job.as_dict()) == job

    def test_supervisor_deadline_raises(self):
        sim = small_job(steps=200).build_simulation()
        with SupervisedRun(sim, checkpoint_every=50,
                           deadline_s=1e-3) as sup:
            with pytest.raises(DeadlineExceededError):
                sup.run(200)
        assert sim.stepper.iteration < 200

    def test_supervisor_deadline_validation(self):
        sim = small_job().build_simulation()
        with pytest.raises(ValueError):
            SupervisedRun(sim, deadline_s=-1.0)

    def test_elapsed_offset_counts_against_deadline(self):
        sim = small_job(steps=200).build_simulation()
        with SupervisedRun(sim, checkpoint_every=50, deadline_s=3600.0,
                           elapsed_offset=7200.0) as sup:
            with pytest.raises(DeadlineExceededError):
                sup.run(200)

    def test_engine_deadline_fails_job_with_reason(self, tmp_path):
        job = small_job(steps=500, checkpoint_every=100, deadline_s=0.001)
        with JobEngine(max_workers=1, data_dir=tmp_path) as engine:
            job_id = engine.submit(job)
            result = engine.result(job_id, timeout=60)
            assert result.state is JobState.FAILED
            assert "deadline" in result.error
        # the journal records the terminal state durably
        view = JobJournal.replay(tmp_path / "journal.jsonl")
        assert view[job_id]["state"] == "failed"

    def test_backoff_sleeps_between_retries(self):
        inj = FaultInjector(seed=3).add_nan(step=6, array="vx", count=5)
        sim = small_job(steps=12, checkpoint_every=4).build_simulation()
        with SupervisedRun(sim, checkpoint_every=4, injector=inj,
                           backoff_base=0.02) as sup:
            sup.run(12)
            assert sup.report.recoveries >= 1
            assert sup.report.backoff_seconds > 0.0
            assert sup.report.as_dict()["backoff_seconds"] > 0.0

    def test_on_checkpoint_callback(self, tmp_path):
        seen = []
        sim = small_job(steps=12).build_simulation()
        with SupervisedRun(sim, checkpoint_every=4, checkpoint_dir=tmp_path,
                           on_checkpoint=lambda p, i: seen.append((p, i))
                           ) as sup:
            sup.run(12)
        iterations = [i for _, i in seen]
        assert 4 in iterations and 8 in iterations
        assert all(p.exists() or True for p, _ in seen)

    def test_on_checkpoint_exception_does_not_kill_run(self, tmp_path):
        def bomb(path, iteration):
            raise RuntimeError("sidecar writer exploded")

        sim = small_job(steps=12).build_simulation()
        with SupervisedRun(sim, checkpoint_every=4, checkpoint_dir=tmp_path,
                           on_checkpoint=bomb) as sup:
            history = sup.run(12)
        assert len(history.times) == 13  # initial entry + 12 steps


# ----------------------------------------------------------------------
# Leases and stale-claim reclaim
# ----------------------------------------------------------------------
class TestLeases:
    def _claimed_doc(self, spool, name="job-x.json"):
        queue, claimed, _ = spool_dirs(spool)
        claim = claimed / name
        write_json_atomic(claim, {"id": name[:-5],
                                  "job": small_job().as_dict()})
        return queue, claimed, claim

    def test_fresh_lease_is_not_reclaimed(self, tmp_path):
        queue, claimed, claim = self._claimed_doc(tmp_path)
        write_json_atomic(claim.with_name(claim.name + ".lease"),
                          {"owner": "other", "ts": time.time(), "pid": 1})
        assert reclaim_stale(queue, claimed, owner="me",
                             lease_ttl=30.0) == []
        assert claim.exists()

    def test_stale_lease_is_reclaimed(self, tmp_path):
        queue, claimed, claim = self._claimed_doc(tmp_path)
        write_json_atomic(claim.with_name(claim.name + ".lease"),
                          {"owner": "other", "ts": time.time(), "pid": 1})
        with lease_clock_skew(120.0):
            reclaimed = reclaim_stale(queue, claimed, owner="me",
                                      lease_ttl=30.0)
        assert reclaimed == [claim.name]
        assert (queue / claim.name).exists() and not claim.exists()
        assert not claim.with_name(claim.name + ".lease").exists()

    def test_own_claims_never_reclaimed(self, tmp_path):
        queue, claimed, claim = self._claimed_doc(tmp_path)
        write_json_atomic(claim.with_name(claim.name + ".lease"),
                          {"owner": "me", "ts": time.time(), "pid": 1})
        with lease_clock_skew(120.0):
            assert reclaim_stale(queue, claimed, owner="me",
                                 lease_ttl=30.0) == []
        assert claim.exists()

    def test_leaseless_claim_falls_back_to_mtime(self, tmp_path):
        queue, claimed, claim = self._claimed_doc(tmp_path)
        old = time.time() - 300
        os.utime(claim, (old, old))
        assert reclaim_stale(queue, claimed, owner="me",
                             lease_ttl=30.0) == [claim.name]
        assert (queue / claim.name).exists()

    def test_rejected_sidecars_never_reclaimed(self, tmp_path):
        queue, claimed, _ = spool_dirs(tmp_path)
        sidecar = claimed / "bad.rejected.json"
        write_json_atomic(sidecar, {"name": "bad.json", "error": "boom"})
        old = time.time() - 300
        os.utime(sidecar, (old, old))
        assert reclaim_stale(queue, claimed, owner="me",
                             lease_ttl=30.0) == []
        assert sidecar.exists()

    def test_clock_skew_restores_on_exit(self):
        from repro.service import spool as spool_mod
        before = spool_mod._CLOCK_SKEW
        with lease_clock_skew(99.0):
            assert spool_mod._CLOCK_SKEW == before + 99.0
        assert spool_mod._CLOCK_SKEW == before

    def test_serve_leaves_no_lease_litter(self, tmp_path):
        job = small_job(steps=6, checkpoint_every=50)
        submit_to_spool(tmp_path, job, job_id="leased")
        assert serve_spool(tmp_path, max_workers=1, poll=0.02,
                           drain=True) == 1
        _, claimed, _ = spool_dirs(tmp_path)
        assert list(claimed.iterdir()) == []
        assert read_result(tmp_path, "leased")["state"] == "succeeded"


# ----------------------------------------------------------------------
# Spool retention gc
# ----------------------------------------------------------------------
class TestSpoolGc:
    def test_parse_age(self):
        assert parse_age("90") == 90.0
        assert parse_age("30s") == 30.0
        assert parse_age("5m") == 300.0
        assert parse_age("2h") == 7200.0
        assert parse_age("1d") == 86400.0
        with pytest.raises(ValueError):
            parse_age("soon")
        with pytest.raises(ValueError):
            parse_age("-5m")

    def test_gc_removes_only_old_settled_litter(self, tmp_path):
        queue, claimed, results = spool_dirs(tmp_path)
        old = time.time() - 3600
        # old result + old quarantine: collectable
        write_json_atomic(results / "done.json", {"state": "succeeded"})
        (claimed / "bad.rejected").write_text("garbage")
        write_json_atomic(claimed / "bad.rejected.json", {"error": "x"})
        for p in (results / "done.json", claimed / "bad.rejected",
                  claimed / "bad.rejected.json"):
            os.utime(p, (old, old))
        # fresh result: kept
        write_json_atomic(results / "fresh.json", {"state": "succeeded"})
        # in-flight documents, aged far past the cutoff: NEVER collected
        write_json_atomic(queue / "waiting.json",
                          {"id": "waiting", "job": small_job().as_dict()})
        write_json_atomic(claimed / "running.json",
                          {"id": "running", "job": small_job().as_dict()})
        os.utime(queue / "waiting.json", (old, old))
        os.utime(claimed / "running.json", (old, old))

        assert gc_spool(tmp_path, 60.0) == 3
        assert not (results / "done.json").exists()
        assert not (claimed / "bad.rejected").exists()
        assert not (claimed / "bad.rejected.json").exists()
        assert (results / "fresh.json").exists()
        assert (queue / "waiting.json").exists()
        assert (claimed / "running.json").exists()

    def test_gc_zero_when_nothing_old(self, tmp_path):
        _, _, results = spool_dirs(tmp_path)
        write_json_atomic(results / "fresh.json", {"state": "succeeded"})
        assert gc_spool(tmp_path, 3600.0) == 0


# ----------------------------------------------------------------------
# Torn documents, rejection forensics, duplicates, drain
# ----------------------------------------------------------------------
class TestSpoolRobustness:
    def test_read_result_none_on_torn_doc(self, tmp_path):
        _, _, results = spool_dirs(tmp_path)
        (results / "torn.json").write_text('{"state": "succee')
        assert read_result(tmp_path, "torn") is None

    def test_wait_for_result_times_out_on_torn_doc(self, tmp_path):
        _, _, results = spool_dirs(tmp_path)
        (results / "torn.json").write_text('{"state": "succee')
        with pytest.raises(TimeoutError):
            wait_for_result(tmp_path, "torn", timeout=0.2, poll=0.05)

    def test_wait_for_result_vs_concurrent_atomic_writer(self, tmp_path):
        _, _, results = spool_dirs(tmp_path)

        def writer():
            time.sleep(0.1)
            write_json_atomic(results / "late.json", {"state": "succeeded"})

        t = threading.Thread(target=writer)
        t.start()
        try:
            doc = wait_for_result(tmp_path, "late", timeout=10, poll=0.02)
        finally:
            t.join()
        assert doc["state"] == "succeeded"

    def test_unparsable_doc_quarantined_with_forensics(self, tmp_path):
        queue, claimed, _ = spool_dirs(tmp_path)
        (queue / "garbage.json").write_text("not json at all")
        submit_to_spool(tmp_path, small_job(steps=6, checkpoint_every=50),
                        job_id="good")
        assert serve_spool(tmp_path, max_workers=1, poll=0.02,
                           drain=True) == 1
        assert read_result(tmp_path, "good")["state"] == "succeeded"
        assert (claimed / "garbage.rejected").exists()
        forensics = read_json_tolerant(claimed / "garbage.rejected.json")
        assert forensics["name"] == "garbage.json"
        assert forensics["error"] and forensics["error_type"]
        assert isinstance(forensics["ts"], float)

    def test_drain_with_only_rejected_files_in_queue(self, tmp_path):
        queue, _, _ = spool_dirs(tmp_path)
        (queue / "old.rejected").write_text("garbage")
        write_json_atomic(queue / "old.rejected.json", {"error": "x"})
        assert serve_spool(tmp_path, max_workers=1, poll=0.02,
                           drain=True) == 0

    def test_duplicate_inner_id_settles_instead_of_stranding(self, tmp_path):
        queue, claimed, _ = spool_dirs(tmp_path)
        job = small_job(steps=6, checkpoint_every=50)
        # two queue documents, distinct file names, same inner id
        write_json_atomic(queue / "dup.json",
                          {"id": "dup", "job": job.as_dict()})
        write_json_atomic(queue / "dup-copy.json",
                          {"id": "dup", "job": job.as_dict()})
        settled = serve_spool(tmp_path, max_workers=1, poll=0.02, drain=True)
        assert settled == 1
        # the canonical run's result wins; no claim or lease is stranded
        assert read_result(tmp_path, "dup")["state"] == "succeeded"
        assert list(claimed.iterdir()) == []

    def test_stop_callable_parks_and_returns(self, tmp_path):
        job = small_job(steps=2000, checkpoint_every=100)
        submit_to_spool(tmp_path, job, job_id="parked")
        stop = threading.Event()
        out = {}

        def serve():
            out["settled"] = serve_spool(
                tmp_path, max_workers=1, poll=0.02,
                data_dir=tmp_path / "data", stop=stop.is_set)

        t = threading.Thread(target=serve)
        t.start()
        time.sleep(0.4)  # let it claim and start stepping
        stop.set()
        t.join(timeout=30)
        assert not t.is_alive()
        assert out["settled"] == 0
        # the journal survived; a recovering engine finishes the job
        with JobEngine.recover(tmp_path / "data", max_workers=1) as engine:
            jobs = engine.list_jobs()
            assert [info.job_id for info in jobs] == ["parked"]


# ----------------------------------------------------------------------
# Graceful drain over the process boundary (exit code 5)
# ----------------------------------------------------------------------
class TestServeSignals:
    @pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_with_exit_code_5(self, tmp_path, sig):
        job = small_job(steps=4000, checkpoint_every=200)
        submit_to_spool(tmp_path / "spool", job, job_id="sigjob")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--spool", str(tmp_path / "spool"),
             "--data-dir", str(tmp_path / "data"),
             "--poll", "0.05", "--max-workers", "1"],
            cwd=REPO, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            # wait until the server has claimed the job
            deadline = time.monotonic() + 30
            claim = tmp_path / "spool" / "claimed" / "sigjob.json"
            while time.monotonic() < deadline and not claim.exists():
                time.sleep(0.05)
            assert claim.exists(), "server never claimed the job"
            time.sleep(0.3)  # let it run a little
            proc.send_signal(sig)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert rc == 5
        # the drained server's work is recoverable
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--spool", str(tmp_path / "spool"),
             "--data-dir", str(tmp_path / "data"),
             "--recover", "--drain", "--poll", "0.05",
             "--max-workers", "1"],
            cwd=REPO, env=env, timeout=300,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        assert proc.returncode == 0, proc.stderr
        doc = read_result(tmp_path / "spool", "sigjob")
        assert doc is not None and doc["state"] == "succeeded"
        assert doc["steps_done"] == job.steps
