"""Tests for the domain-decomposition counterfactual model (§V-A)."""

import pytest

from repro.parallel.domain_decomp import (
    DomainDecompositionModel,
    compare_schemes,
)


class TestPatchGeometry:
    @pytest.mark.parametrize("p,expect", [(4, (2, 2)), (16, (4, 4)), (8, (2, 4)), (6, (2, 3)), (7, (1, 7))])
    def test_near_square_factorization(self, p, expect):
        assert DomainDecompositionModel().patch_grid(p) == expect


class TestCostComponents:
    @pytest.fixture
    def dd(self):
        return DomainDecompositionModel()

    def test_halo_shrinks_with_more_ranks(self, dd):
        # per-rank halo edges get shorter as patches shrink
        assert dd.halo_seconds(64, 256, 256) < dd.halo_seconds(4, 256, 256)

    def test_migration_grows_with_rank_count(self, dd):
        # smaller patches -> larger crossing fraction (at fixed load)
        a = dd.migration_seconds(1_000_000, 4, 256)
        b = dd.migration_seconds(1_000_000, 64, 256)
        assert b > a

    def test_migration_fraction_capped(self, dd):
        # absurdly small patches can't migrate more than everything
        t = dd.migration_seconds(1000, 65536, 16)
        full = 8 * dd.latency_s + 1000 * dd.particle_bytes / (dd.bandwidth_gbs * 1e9)
        assert t <= full + 1e-12

    def test_imbalance_scales_compute(self, dd):
        base = dd.iteration_seconds(1.0, 16, 256, 256, 1e6, imbalance=0.0)
        skew = dd.iteration_seconds(1.0, 16, 256, 256, 1e6, imbalance=0.5)
        assert skew - base == pytest.approx(0.5, rel=0.05)

    def test_rejects_negative_imbalance(self, dd):
        with pytest.raises(ValueError):
            dd.iteration_seconds(1.0, 4, 64, 64, 1e5, imbalance=-0.1)


class TestComparison:
    def test_balanced_small_scale_dd_competitive(self):
        """With a uniform plasma and few ranks, DD's tiny halos beat the
        global allreduce — the reason DD is the 'state of the art'."""
        rows = compare_schemes([256], 1.0, 128, 128, 5e7, imbalance=0.0)
        assert rows[0].dd_seconds < rows[0].no_dd_seconds * 1.5

    def test_imbalance_flips_the_verdict(self):
        """The paper's §V-A point: once the plasma bunches, the no-DD
        scheme's automatic balance wins."""
        balanced = compare_schemes([64], 1.0, 128, 128, 5e7, imbalance=0.0)[0]
        skewed = compare_schemes([64], 1.0, 128, 128, 5e7, imbalance=1.0)[0]
        assert skewed.ratio > balanced.ratio
        assert skewed.winner == "no-DD"

    def test_ratio_and_winner_consistent(self):
        for row in compare_schemes([4, 64, 1024], 0.5, 128, 128, 1e7, 0.3):
            if row.ratio > 1:
                assert row.winner == "no-DD"
            else:
                assert row.winner == "DD"

    def test_no_dd_cost_grows_with_ranks(self):
        rows = compare_schemes([4, 64, 1024], 1.0, 128, 128, 1e7, 0.0)
        no_dd = [r.no_dd_seconds for r in rows]
        assert no_dd == sorted(no_dd)

    def test_problem_independence_of_no_dd(self):
        """The no-DD time is unchanged by imbalance of the *particle
        distribution in space* — every rank keeps its own particles."""
        a = compare_schemes([64], 1.0, 128, 128, 1e7, imbalance=0.0)[0]
        b = compare_schemes([64], 1.0, 128, 128, 1e7, imbalance=2.0)[0]
        assert b.no_dd_seconds == pytest.approx(a.no_dd_seconds)
        assert b.dd_seconds > 2.0 * a.dd_seconds
