"""Tests for the 3d3v extension (paper §VI outlook)."""

import numpy as np
import pytest

from repro.pic3d import (
    GridSpec3D,
    LandauDamping3D,
    Morton3DOrdering,
    PICStepper3D,
    RedundantFields3D,
    RowMajor3DOrdering,
    SpectralPoissonSolver3D,
    TwoStream3D,
    accumulate_redundant_3d,
    corner_weights_3d,
    interpolate_redundant_3d,
    push_positions_bitwise_3d,
)
from repro.pic3d.grid3d import corner_offsets_3d


class TestOrderings3D:
    @pytest.mark.parametrize("cls", [RowMajor3DOrdering, Morton3DOrdering])
    def test_bijective(self, cls):
        o = cls(8, 4, 16)
        m = o.index_map()
        assert len(np.unique(m)) == 8 * 4 * 16
        assert m.min() == 0 and m.max() == o.ncells - 1

    @pytest.mark.parametrize("cls", [RowMajor3DOrdering, Morton3DOrdering])
    def test_roundtrip(self, cls, rng):
        o = cls(8, 16, 4)
        ix = rng.integers(0, 8, 500)
        iy = rng.integers(0, 16, 500)
        iz = rng.integers(0, 4, 500)
        jx, jy, jz = o.decode(o.encode(ix, iy, iz))
        np.testing.assert_array_equal(ix, jx)
        np.testing.assert_array_equal(iy, jy)
        np.testing.assert_array_equal(iz, jz)

    def test_row_major_closed_form(self):
        o = RowMajor3DOrdering(4, 8, 16)
        assert o.encode(1, 2, 3) == (1 * 8 + 2) * 16 + 3

    def test_morton_cube_is_pure_morton(self):
        from repro.curves.curves3d import morton_encode_3d

        o = Morton3DOrdering(8, 8, 8)
        ix, iy, iz = np.meshgrid(*(np.arange(8),) * 3, indexing="ij")
        np.testing.assert_array_equal(
            o.encode(ix, iy, iz), morton_encode_3d(ix, iy, iz)
        )

    def test_morton_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            Morton3DOrdering(6, 8, 8)


class TestGrid3D:
    def test_derived_quantities(self):
        g = GridSpec3D(4, 8, 16, 0, 4, 0, 8, 0, 2)
        assert g.lengths == (4.0, 8.0, 2.0)
        assert g.spacings == (1.0, 1.0, 0.125)
        assert g.ncells == 512
        assert g.volume == pytest.approx(64.0)
        assert g.cell_volume == pytest.approx(0.125)

    def test_pow2(self):
        assert GridSpec3D(4, 8, 16).pow2
        assert not GridSpec3D(4, 6, 16).pow2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            GridSpec3D(0, 4, 4)
        with pytest.raises(ValueError):
            GridSpec3D(4, 4, 4, 1.0, 1.0)


class TestCornerWeights3D:
    def test_offsets_table(self):
        offs = corner_offsets_3d()
        assert offs.shape == (8, 3)
        assert len({tuple(r) for r in offs}) == 8

    def test_partition_of_unity(self, rng):
        w = corner_weights_3d(rng.random(500), rng.random(500), rng.random(500))
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-13)
        assert w.min() >= 0

    def test_corner_selection(self):
        # at offsets (0,0,0) all weight on corner 0; at (1,1,1) corner 7
        w0 = corner_weights_3d([0.0], [0.0], [0.0])[0]
        np.testing.assert_allclose(w0, np.eye(8)[0])
        w7 = corner_weights_3d([1.0], [1.0], [1.0])[0]
        np.testing.assert_allclose(w7, np.eye(8)[7])

    def test_trilinear_products(self, rng):
        dx, dy, dz = rng.random(3)
        w = corner_weights_3d([dx], [dy], [dz])[0]
        for c in range(8):
            ox, oy, oz = (c >> 2) & 1, (c >> 1) & 1, c & 1
            expected = (
                (dx if ox else 1 - dx)
                * (dy if oy else 1 - dy)
                * (dz if oz else 1 - dz)
            )
            assert w[c] == pytest.approx(expected)


class TestFields3D:
    @pytest.fixture
    def setup(self):
        grid = GridSpec3D(8, 8, 8, 0, 1, 0, 1, 0, 1)
        return grid, RedundantFields3D(grid, Morton3DOrdering(8, 8, 8))

    def test_memory_is_8x_pointwise_rho(self, setup):
        grid, fields = setup
        assert fields.rho_1d.nbytes == 8 * grid.ncells * 8

    def test_broadcast_roundtrip(self, setup, rng):
        _, fields = setup
        ex, ey, ez = (rng.random((8, 8, 8)) for _ in range(3))
        fields.load_field_from_grid(ex, ey, ez)
        bx, by, bz = fields.field_at_grid()
        np.testing.assert_allclose(bx, ex)
        np.testing.assert_allclose(by, ey)
        np.testing.assert_allclose(bz, ez)

    def test_reduce_folds_8_corners(self, setup):
        _, fields = setup
        icell = int(fields.ordering.encode(3, 4, 5))
        fields.rho_1d[icell, :] = 1.0
        rho = fields.reduce_rho_to_grid()
        assert rho.sum() == pytest.approx(8.0)
        # the 8 surrounding grid points each got 1
        for c in range(8):
            ox, oy, oz = (c >> 2) & 1, (c >> 1) & 1, c & 1
            assert rho[3 + ox, 4 + oy, 5 + oz] == 1.0

    def test_charge_conservation(self, setup, rng):
        _, fields = setup
        n = 300
        icell = fields.ordering.encode(
            rng.integers(0, 8, n), rng.integers(0, 8, n), rng.integers(0, 8, n)
        )
        accumulate_redundant_3d(
            fields.rho_1d, icell, rng.random(n), rng.random(n), rng.random(n), 0.5
        )
        assert fields.rho_1d.sum() == pytest.approx(0.5 * n)
        assert fields.reduce_rho_to_grid().sum() == pytest.approx(0.5 * n)

    def test_interpolation_exact_at_corner0(self, setup, rng):
        _, fields = setup
        ex, ey, ez = (rng.random((8, 8, 8)) for _ in range(3))
        fields.load_field_from_grid(ex, ey, ez)
        icell = fields.ordering.encode([2], [3], [4])
        z = np.zeros(1)
        fx, fy, fz = interpolate_redundant_3d(fields.e_1d, icell, z, z, z)
        assert fx[0] == pytest.approx(ex[2, 3, 4])
        assert fy[0] == pytest.approx(ey[2, 3, 4])
        assert fz[0] == pytest.approx(ez[2, 3, 4])


class TestPoisson3D:
    def test_single_mode(self):
        g = GridSpec3D(16, 16, 16, 0, 2 * np.pi, 0, 2 * np.pi, 0, 2 * np.pi)
        x = np.arange(16) * g.spacings[0]
        rho = np.cos(x)[:, None, None] * np.ones((1, 16, 16))
        phi, ex, ey, ez = SpectralPoissonSolver3D(g).solve(rho)
        np.testing.assert_allclose(phi, rho, atol=1e-12)  # k^2 = 1
        np.testing.assert_allclose(ex, np.sin(x)[:, None, None] * np.ones((1, 16, 16)), atol=1e-12)
        np.testing.assert_allclose(ey, 0, atol=1e-12)
        np.testing.assert_allclose(ez, 0, atol=1e-12)

    def test_mean_projected(self, rng):
        g = GridSpec3D(8, 8, 8)
        rho = rng.random((8, 8, 8))
        phi, *_ = SpectralPoissonSolver3D(g).solve(rho)
        assert abs(phi.mean()) < 1e-12

    def test_shape_validation(self):
        g = GridSpec3D(8, 8, 8)
        with pytest.raises(ValueError):
            SpectralPoissonSolver3D(g).solve(np.zeros((4, 4, 4)))


class TestPush3D:
    def test_positions_wrap_and_consistency(self, rng):
        o = Morton3DOrdering(8, 8, 8)
        n = 1000
        p = {
            "ix": rng.integers(0, 8, n), "iy": rng.integers(0, 8, n),
            "iz": rng.integers(0, 8, n),
            "dx": rng.random(n), "dy": rng.random(n), "dz": rng.random(n),
            "vx": rng.normal(0, 5, n), "vy": rng.normal(0, 5, n),
            "vz": rng.normal(0, 5, n),
        }
        p["icell"] = o.encode(p["ix"], p["iy"], p["iz"])
        x_before = p["ix"] + p["dx"]
        v = p["vx"].copy()
        push_positions_bitwise_3d(p, (8, 8, 8), o)
        assert p["ix"].min() >= 0 and p["ix"].max() < 8
        wrapped = np.mod(p["ix"] + p["dx"] - x_before - v + 4, 8) - 4
        np.testing.assert_allclose(wrapped, 0.0, atol=1e-9)
        np.testing.assert_array_equal(
            p["icell"], o.encode(p["ix"], p["iy"], p["iz"])
        )


class TestStepper3D:
    @pytest.fixture(scope="class")
    def stepper(self):
        grid = GridSpec3D(16, 8, 8, 0, 4 * np.pi, 0, 4 * np.pi, 0, 4 * np.pi)
        return PICStepper3D(grid, LandauDamping3D(alpha=0.1), 40_000, dt=0.1)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            PICStepper3D(GridSpec3D(12, 8, 8), LandauDamping3D(), 100)

    def test_initial_perturbation_present(self, stepper):
        assert stepper.field_energy() > 0
        assert np.abs(stepper.ex_grid).max() > 10 * np.abs(stepper.ey_grid).max()

    def test_energy_conserved(self, stepper):
        e0 = stepper.total_energy()
        stepper.run(30)
        assert abs(stepper.total_energy() - e0) / e0 < 1e-3

    def test_landau_decay(self, stepper):
        fe0 = stepper.field_energy()
        stepper.run(30)  # total 60 by now (class-scoped)
        assert stepper.field_energy() < 0.7 * fe0

    def test_total_charge_invariant(self, stepper):
        total = stepper.rho_grid.sum()
        expected = stepper.q * stepper.weight * 40_000 / stepper.grid.cell_volume
        assert total == pytest.approx(expected, rel=1e-9)

    def test_offsets_in_range(self, stepper):
        for k in ("dx", "dy", "dz"):
            assert stepper.particles[k].min() >= 0
            assert stepper.particles[k].max() <= 1.0


class TestTwoStream3D:
    def test_beams_are_symmetric(self):
        grid = GridSpec3D(32, 4, 4, xmax=10 * np.pi, ymax=2 * np.pi,
                          zmax=2 * np.pi)
        x, y, z, vx, vy, vz = TwoStream3D(v0=2.4, vth=0.1).sample(10_000, grid)
        # two populations around +-v0, net drift ~ 0
        assert abs(np.mean(vx)) < 0.1
        assert np.std(vx) == pytest.approx(2.4, rel=0.05)
        assert np.mean(vx > 0) == pytest.approx(0.5, abs=0.02)
        # transverse components stay thermal
        assert np.std(vy) == pytest.approx(0.1, rel=0.2)

    @pytest.mark.slow
    def test_instability_growth_rate(self):
        """Two-stream growth on the 3D stepper via the shared oracle."""
        from repro.verify.oracles import two_stream_3d_oracle

        result = two_stream_3d_oracle("numpy")
        assert result.passed, result.describe()
