"""Initializer tests: distributions, quiet starts, loading."""

import numpy as np
import pytest

from repro.curves import get_ordering
from repro.grid import GridSpec
from repro.particles import (
    LandauDamping,
    TwoStream,
    UniformMaxwellian,
    halton_sequence,
    load_particles,
    sample_perturbed_positions,
)


class TestHalton:
    def test_base2_prefix(self):
        np.testing.assert_allclose(
            halton_sequence(4, 2), [0.5, 0.25, 0.75, 0.125]
        )

    def test_in_unit_interval(self):
        h = halton_sequence(10_000, 3)
        assert h.min() >= 0 and h.max() < 1

    def test_low_discrepancy(self):
        # empirical CDF within ~log(n)/n of uniform
        n = 4096
        h = np.sort(halton_sequence(n, 2))
        ecdf_err = np.abs(h - (np.arange(1, n + 1) / n)).max()
        assert ecdf_err < 20 / n

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            halton_sequence(10, 1)


class TestPerturbedPositions:
    def test_zero_alpha_uniform(self, rng):
        x = sample_perturbed_positions(1000, 2.0, 0.0, 1.0, rng)
        assert x.min() >= 0 and x.max() < 2.0

    def test_quiet_start_deterministic(self):
        a = sample_perturbed_positions(100, 4 * np.pi, 0.1, 0.5, quiet=True)
        b = sample_perturbed_positions(100, 4 * np.pi, 0.1, 0.5, quiet=True)
        np.testing.assert_array_equal(a, b)

    def test_density_shape(self):
        # histogram should follow 1 + alpha cos(kx)
        L = 4 * np.pi
        alpha, k = 0.3, 0.5
        x = sample_perturbed_positions(400_000, L, alpha, k, quiet=True)
        hist, edges = np.histogram(x, bins=64, range=(0, L))
        centers = 0.5 * (edges[1:] + edges[:-1])
        expected = (1 + alpha * np.cos(k * centers)) * len(x) / 64
        np.testing.assert_allclose(hist, expected, rtol=0.03)

    def test_inverse_cdf_exact_on_quantiles(self):
        # F(x(u)) == u by construction
        L, alpha, k = 4 * np.pi, 0.4, 0.5
        u = np.linspace(0.01, 0.99, 37)
        x = sample_perturbed_positions(
            len(u), L, alpha, k, rng=None, quiet=True
        )  # quiet uses halton; instead invert manually:
        from repro.particles.initializers import _inverse_cdf_perturbed

        x = _inverse_cdf_perturbed(u, alpha, k, L)
        F = (x + (alpha / k) * np.sin(k * x)) / L
        np.testing.assert_allclose(F, u, atol=1e-10)

    def test_rejects_alpha_ge_one(self, rng):
        with pytest.raises(ValueError):
            sample_perturbed_positions(10, 1.0, 1.0, 1.0, rng)

    def test_rejects_missing_rng(self):
        with pytest.raises(ValueError):
            sample_perturbed_positions(10, 1.0, 0.1, 1.0, rng=None, quiet=False)


class TestCases:
    def test_landau_kx(self):
        case = LandauDamping(mode=2)
        g = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        assert case.kx(g) == pytest.approx(1.0)

    def test_landau_default_grid_gives_k_half(self):
        case = LandauDamping()
        g = case.default_grid()
        assert case.kx(g) == pytest.approx(0.5)

    def test_landau_sample_shapes(self, rng):
        g = LandauDamping().default_grid()
        x, y, vx, vy = LandauDamping(alpha=0.1).sample(500, g, rng)
        assert len(x) == len(y) == len(vx) == len(vy) == 500
        assert x.min() >= g.xmin and x.max() < g.xmax

    def test_landau_velocity_moments(self):
        g = LandauDamping().default_grid()
        _, _, vx, vy = LandauDamping(vth=2.0).sample(200_000, g, None, quiet=True)
        assert vx.mean() == pytest.approx(0.0, abs=0.02)
        assert vx.std() == pytest.approx(2.0, rel=0.02)
        assert vy.std() == pytest.approx(2.0, rel=0.02)

    def test_two_stream_bimodal(self):
        case = TwoStream(v0=3.0, vth=0.2)
        g = case.default_grid()
        _, _, vx, _ = case.sample(100_000, g, None, quiet=True)
        # two beams: essentially no particles near v=0, half on each side
        assert np.mean(np.abs(vx) < 1.0) < 0.01
        assert np.mean(vx > 0) == pytest.approx(0.5, abs=0.02)

    def test_uniform_case(self, rng):
        case = UniformMaxwellian(vth=1.0)
        g = case.default_grid()
        x, y, _, _ = case.sample(10_000, g, rng)
        assert x.min() >= g.xmin and y.max() < g.ymax


class TestLoadParticles:
    @pytest.fixture
    def grid(self):
        return GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)

    def test_weight_normalization(self, grid):
        o = get_ordering("morton", 16, 16)
        p = load_particles(grid, o, LandauDamping(), 1000, density=2.0)
        assert p.weight * p.n == pytest.approx(2.0 * grid.area)

    def test_presorted_by_cell(self, grid):
        o = get_ordering("morton", 16, 16)
        p = load_particles(grid, o, LandauDamping(alpha=0.1), 5000, seed=1)
        assert np.all(np.diff(np.asarray(p.icell)) >= 0)

    def test_unsorted_option(self, grid):
        o = get_ordering("row-major", 16, 16)
        p = load_particles(
            grid, o, LandauDamping(alpha=0.1), 5000, seed=1, presorted=False,
            store_coords=False,
        )
        assert np.any(np.diff(np.asarray(p.icell)) < 0)

    def test_icell_consistent_with_coords(self, grid):
        o = get_ordering("l4d", 16, 16, size=4)
        p = load_particles(grid, o, LandauDamping(), 2000)
        np.testing.assert_array_equal(
            np.asarray(p.icell), o.encode(np.asarray(p.ix), np.asarray(p.iy))
        )

    def test_offsets_in_unit_interval(self, grid):
        o = get_ordering("row-major", 16, 16)
        p = load_particles(grid, o, TwoStream(), 2000, store_coords=False)
        assert np.asarray(p.dx).min() >= 0 and np.asarray(p.dx).max() < 1
        assert np.asarray(p.dy).min() >= 0 and np.asarray(p.dy).max() < 1

    @pytest.mark.parametrize("layout", ["soa", "aos"])
    def test_layouts_equivalent_content(self, grid, layout):
        o = get_ordering("morton", 16, 16)
        p = load_particles(grid, o, LandauDamping(), 300, layout=layout, seed=7)
        q = load_particles(grid, o, LandauDamping(), 300, layout="soa", seed=7)
        for k in ("icell", "dx", "vy"):
            np.testing.assert_array_equal(
                np.asarray(getattr(p, k)), np.asarray(getattr(q, k))
            )

    def test_requires_seed_for_random(self, grid):
        o = get_ordering("row-major", 16, 16)
        with pytest.raises(ValueError):
            load_particles(grid, o, LandauDamping(), 10, seed=None, quiet=False)
