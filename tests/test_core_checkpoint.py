"""Checkpoint save/restore tests: bit-exact continuation."""

import numpy as np
import pytest

from repro.core import OptimizationConfig, PICStepper
from repro.core.checkpoint import (
    CheckpointMismatchError,
    load_checkpoint,
    save_checkpoint,
)
from repro.grid import GridSpec
from repro.particles import LandauDamping


@pytest.fixture
def grid():
    return GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)


def fresh_stepper(grid, cfg=None, n=3000):
    cfg = cfg or OptimizationConfig.fully_optimized()
    return PICStepper(
        grid, cfg, case=LandauDamping(alpha=0.05), n_particles=n,
        dt=0.1, quiet=True, seed=None,
    )


class TestRoundTrip:
    def test_restore_continues_bit_exactly(self, grid, tmp_path):
        a = fresh_stepper(grid)
        a.run(5)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        b = load_checkpoint(path)
        # continue both for several steps: fields must match exactly
        a.run(7)
        b.run(7)
        np.testing.assert_array_equal(a.ex_grid, b.ex_grid)
        np.testing.assert_array_equal(
            np.asarray(a.particles.dx), np.asarray(b.particles.dx)
        )
        assert b.iteration == a.iteration

    def test_restore_preserves_metadata(self, grid, tmp_path):
        a = fresh_stepper(grid)
        a.run(3)
        b = load_checkpoint(save_checkpoint(a, tmp_path / "ck.npz"))
        assert b.dt == a.dt
        assert b.q == a.q and b.m == a.m
        assert b.particles.weight == a.particles.weight
        assert b.particles.n == a.particles.n
        assert b.config == a.config

    @pytest.mark.parametrize(
        "cfg",
        [
            OptimizationConfig.baseline(),
            OptimizationConfig.fully_optimized("l4d", size=8),
            OptimizationConfig.fully_optimized().with_(hoisting=False),
        ],
        ids=["baseline", "l4d", "no-hoist"],
    )
    def test_roundtrip_across_configs(self, grid, tmp_path, cfg):
        a = fresh_stepper(grid, cfg)
        a.run(4)
        b = load_checkpoint(save_checkpoint(a, tmp_path / "ck.npz"))
        a.step()
        b.step()
        np.testing.assert_array_equal(a.ex_grid, b.ex_grid)

    def test_sort_state_continues(self, grid, tmp_path):
        cfg = OptimizationConfig.fully_optimized().with_(sort_period=4)
        a = fresh_stepper(grid, cfg)
        a.run(3)  # next step sorts
        b = load_checkpoint(save_checkpoint(a, tmp_path / "ck.npz"))
        a.run(3)
        b.run(3)
        np.testing.assert_array_equal(a.ex_grid, b.ex_grid)


class TestCompatibilityChecks:
    def test_incompatible_layout_rejected(self, grid, tmp_path):
        a = fresh_stepper(grid)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        with pytest.raises(CheckpointMismatchError, match="particle_layout"):
            load_checkpoint(
                path, OptimizationConfig.fully_optimized().with_(particle_layout="aos")
            )

    def test_incompatible_ordering_rejected(self, grid, tmp_path):
        a = fresh_stepper(grid)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        with pytest.raises(CheckpointMismatchError, match="ordering"):
            load_checkpoint(
                path, OptimizationConfig.fully_optimized("hilbert")
            )

    def test_compatible_override_allowed(self, grid, tmp_path):
        """Changing the sort period is state-compatible."""
        a = fresh_stepper(grid)
        a.run(2)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        b = load_checkpoint(
            path, OptimizationConfig.fully_optimized().with_(sort_period=7)
        )
        assert b.config.sort_period == 7
        b.step()  # runs fine

    def test_bad_version_rejected(self, grid, tmp_path):
        import json

        a = fresh_stepper(grid)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "_meta"}
            meta = json.loads(str(data["_meta"]))
        meta["format_version"] = 999
        np.savez_compressed(path, _meta=json.dumps(meta), **arrays)
        with pytest.raises(CheckpointMismatchError, match="version"):
            load_checkpoint(path)


class TestCrashSafety:
    def test_save_leaves_no_tmp_sibling(self, grid, tmp_path):
        a = fresh_stepper(grid, n=500)
        save_checkpoint(a, tmp_path / "ck.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]

    def test_suffix_normalized(self, grid, tmp_path):
        a = fresh_stepper(grid, n=500)
        path = save_checkpoint(a, tmp_path / "ck")
        assert path.name == "ck.npz" and path.exists()

    def test_failed_write_preserves_previous_checkpoint(
        self, grid, tmp_path, monkeypatch
    ):
        a = fresh_stepper(grid, n=500)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        good = path.read_bytes()
        a.step()

        def boom(*_a, **_kw):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(a, path)
        assert path.read_bytes() == good  # old archive untouched
        assert list(tmp_path.glob("*.tmp")) == []  # no litter either

    def test_truncated_archive_rejected(self, grid, tmp_path):
        a = fresh_stepper(grid, n=500)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(CheckpointMismatchError, match="corrupt"):
            load_checkpoint(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointMismatchError):
            load_checkpoint(path)

    def test_missing_array_rejected(self, grid, tmp_path):
        import json

        a = fresh_stepper(grid, n=500)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        with np.load(path) as data:
            arrays = {
                k: data[k] for k in data.files if k not in ("_meta", "vx")
            }
            meta = str(data["_meta"])
        np.savez_compressed(path, _meta=meta, **arrays)
        with pytest.raises(CheckpointMismatchError, match="missing arrays.*vx"):
            load_checkpoint(path)

    def test_missing_meta_rejected(self, grid, tmp_path):
        a = fresh_stepper(grid, n=500)
        path = save_checkpoint(a, tmp_path / "ck.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "_meta"}
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointMismatchError, match="metadata"):
            load_checkpoint(path)
