"""Particle-storage tests: SoA/AoS parity, reorder, memory layout."""

import numpy as np
import pytest

from repro.particles import ParticleAoS, ParticleSoA, make_storage


@pytest.fixture(params=["soa", "aos"])
def storage(request):
    return make_storage(request.param, 100, weight=0.5, store_coords=True)


def fill(storage, rng):
    n = storage.n
    state = dict(
        icell=rng.integers(0, 64, n),
        dx=rng.random(n),
        dy=rng.random(n),
        vx=rng.normal(size=n),
        vy=rng.normal(size=n),
        ix=rng.integers(0, 8, n),
        iy=rng.integers(0, 8, n),
    )
    storage.set_state(**state)
    return state


class TestFactory:
    def test_makes_correct_types(self):
        assert isinstance(make_storage("soa", 10), ParticleSoA)
        assert isinstance(make_storage("aos", 10), ParticleAoS)

    def test_rejects_unknown_layout(self):
        with pytest.raises(ValueError):
            make_storage("csr", 10)

    def test_layout_attribute(self):
        assert make_storage("soa", 1).layout == "soa"
        assert make_storage("aos", 1).layout == "aos"


class TestCommonBehaviour:
    def test_set_and_read_state(self, storage, rng):
        state = fill(storage, rng)
        for k, v in state.items():
            np.testing.assert_array_equal(np.asarray(getattr(storage, k)), v)

    def test_inplace_mutation_through_views(self, storage, rng):
        fill(storage, rng)
        storage.vx[:] = 0.0
        assert np.all(np.asarray(storage.vx) == 0.0)
        storage.dx[:10] += 0.0  # slice views also writable
        storage.icell[0] = 63
        assert storage.icell[0] == 63

    def test_reorder_out_of_place(self, storage, rng):
        state = fill(storage, rng)
        perm = rng.permutation(storage.n)
        out = storage.reorder(perm)
        assert out is not storage
        for k, v in state.items():
            np.testing.assert_array_equal(np.asarray(getattr(out, k)), v[perm])
        # original untouched
        np.testing.assert_array_equal(np.asarray(storage.dx), state["dx"])

    def test_reorder_into_buffer(self, storage, rng):
        state = fill(storage, rng)
        buf = storage.clone_empty()
        out = storage.reorder(np.arange(storage.n)[::-1], out=buf)
        assert out is buf
        np.testing.assert_array_equal(np.asarray(buf.vy), state["vy"][::-1])

    def test_reorder_rejects_wrong_buffer_type(self, storage):
        other = make_storage("aos" if storage.layout == "soa" else "soa", storage.n)
        with pytest.raises(TypeError):
            storage.reorder(np.arange(storage.n), out=other)

    def test_clone_empty_same_shape(self, storage):
        c = storage.clone_empty()
        assert c.n == storage.n
        assert c.weight == storage.weight
        assert c.layout == storage.layout

    def test_total_charge(self, storage):
        assert storage.total_charge(-1.0) == pytest.approx(-0.5 * 100)

    def test_as_dict_copies(self, storage, rng):
        fill(storage, rng)
        d = storage.as_dict()
        d["vx"][:] = 99.0
        assert not np.any(np.asarray(storage.vx) == 99.0)


class TestCoordsOptional:
    @pytest.mark.parametrize("layout", ["soa", "aos"])
    def test_no_coords_raises_on_access(self, layout):
        s = make_storage(layout, 5, store_coords=False)
        with pytest.raises(AttributeError):
            _ = s.ix
        with pytest.raises(AttributeError):
            _ = s.iy

    @pytest.mark.parametrize("layout", ["soa", "aos"])
    def test_set_state_without_coords(self, layout, rng):
        s = make_storage(layout, 5, store_coords=False)
        s.set_state(np.arange(5), *(rng.random(5) for _ in range(4)))
        assert "ix" not in s.as_dict()

    @pytest.mark.parametrize("layout", ["soa", "aos"])
    def test_set_state_missing_coords_raises(self, layout, rng):
        s = make_storage(layout, 5, store_coords=True)
        with pytest.raises(ValueError):
            s.set_state(np.arange(5), *(rng.random(5) for _ in range(4)))


class TestLayoutDifferences:
    def test_soa_views_contiguous(self, rng):
        s = make_storage("soa", 50)
        assert s.vx.strides == (8,)

    def test_aos_views_strided(self, rng):
        s = make_storage("aos", 50, store_coords=True)
        # record = 7 fields x 8 bytes
        assert s.vx.strides == (56,)

    def test_aos_memory_one_block(self):
        s = make_storage("aos", 10, store_coords=True)
        assert s.memory_bytes == 10 * 56

    def test_soa_memory_accounting(self):
        s = make_storage("soa", 10, store_coords=True)
        assert s.memory_bytes == 10 * 56
        s2 = make_storage("soa", 10, store_coords=False)
        assert s2.memory_bytes == 10 * 40
