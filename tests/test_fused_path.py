"""The fused single-pass particle loop and the thread-parallel deposit.

Covers the dispatch plumbing (split / fused-backend / fused-chunked),
bitwise equivalence of the fused path against the split numpy oracle
across every position-update variant and both field layouts, the
thread-count invariance of the cell-ownership parallel deposit, the
fused-vs-split autotuner, and the supervisor degrading a fused-capable
backend down the chain.

The composite test backend renders ``fused_interp_kick_push`` by
composing the split numpy kernels, so it is bitwise-identical to the
split path *by construction* — that isolates the stepper dispatch and
bookkeeping under test from the compiled kernel itself, which the
numba-gated tests at the bottom exercise when numba is installed.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.core.backends as B
from repro.core import OptimizationConfig, Simulation
from repro.core.autotune import LoopModeAutoTuner, tune_loop_mode
from repro.core.backends import NumbaBackend, NumpyBackend, register_backend
from repro.core.kernels import accumulate_redundant
from repro.curves import get_ordering
from repro.grid import GridSpec
from repro.parallel.openmp import cellwise_accumulate_redundant
from repro.particles import LandauDamping
from repro.resilience import FaultInjector, SupervisedRun

HAS_NUMBA = NumbaBackend.is_available()

SRC = str(Path(__file__).resolve().parents[1] / "src")


class _FusedComposite(NumpyBackend):
    """Numpy backend advertising the fast-path capabilities.

    The fused kernel is the split kernels run back to back on the full
    arrays, and the parallel deposit is the cell-ownership scheme from
    :mod:`repro.parallel.openmp` — both bitwise-equal to the plain
    numpy rendering, so any mismatch a test sees is the stepper's
    fault, not the kernel's.
    """

    name = "fused-composite"
    priority = -5  # never auto-picked
    degrades_to = "numpy"
    capabilities = frozenset({"fused", "parallel_deposit"})

    def fused_interp_kick_push(
        self, fields, particles, ordering, variant,
        coef_x=1.0, coef_y=1.0, scale_x=1.0, scale_y=1.0,
    ):
        p = particles
        if fields.layout == "redundant":
            ex_p, ey_p = self.interpolate_redundant(
                fields.e_1d, p.icell, p.dx, p.dy
            )
        else:
            if p.store_coords:
                ix, iy = p.ix, p.iy
            else:
                ix, iy = ordering.decode(p.icell)
            ex_p, ey_p = self.interpolate_standard(
                fields.ex, fields.ey, ix, iy, p.dx, p.dy
            )
        self.update_velocities(p.vx, p.vy, ex_p, ey_p, coef_x, coef_y)
        g = fields.grid
        self.push_positions(p, g.ncx, g.ncy, ordering, variant, scale_x, scale_y)

    def accumulate_redundant_parallel(self, rho_1d, icell, dx, dy, charge=1.0):
        cellwise_accumulate_redundant(rho_1d, icell, dx, dy, charge, nthreads=3)


@pytest.fixture(scope="module", autouse=True)
def _composite_registered():
    register_backend(_FusedComposite)
    try:
        yield
    finally:
        B._REGISTRY.pop(_FusedComposite.name, None)
        B._INSTANCES.pop(_FusedComposite.name, None)


GRID = dict(ncx=16, ncy=16)


def _sim(cfg_kw, n=1500, steps=None, seed=11):
    grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
    cfg = OptimizationConfig.fully_optimized().with_(**cfg_kw)
    sim = Simulation(grid, LandauDamping(alpha=0.05), n, cfg, dt=0.05, seed=seed)
    if steps:
        sim.run(steps)
    return sim


def _assert_bitwise_equal_states(a, b):
    for attr in ("icell", "dx", "dy", "vx", "vy"):
        np.testing.assert_array_equal(
            np.asarray(getattr(a.particles, attr)),
            np.asarray(getattr(b.particles, attr)),
            err_msg=attr,
        )
    np.testing.assert_array_equal(a.stepper.rho_grid, b.stepper.rho_grid)
    np.testing.assert_array_equal(a.stepper.ex_grid, b.stepper.ex_grid)
    assert a.history.field_energy == b.history.field_energy


class TestLoopPathDispatch:
    def test_split_path_on_any_backend(self):
        with _sim({"loop_mode": "split", "backend": "fused-composite"},
                  steps=3) as sim:
            t = sim.timings
            assert t.loop_paths == {"split": 3}
            assert t.update_v > 0 and t.fused == 0.0

    def test_fused_without_capability_chunks(self):
        with _sim({"loop_mode": "fused", "backend": "numpy"}, steps=3) as sim:
            t = sim.timings
            assert t.loop_paths == {"fused-chunked": 3}
            assert t.update_v > 0 and t.fused == 0.0

    def test_fused_with_capability_uses_backend_kernel(self):
        with _sim({"loop_mode": "fused", "backend": "fused-composite"},
                  steps=3) as sim:
            t = sim.timings
            assert t.loop_paths == {"fused-backend": 3}
            assert t.fused > 0 and t.update_v == 0.0 and t.update_x == 0.0
            # the deposit still runs (through the parallel capability)
            assert t.accumulate > 0
            rates = t.phase_particles_per_second()
            assert rates["fused"] > 0 and rates["update_v"] == 0.0


class TestFusedBitwiseEquivalence:
    """fused-backend vs the split numpy oracle: identical bits.

    Runs cross a sort step (``sort_period=3``) so the equivalence holds
    through the permutation as well.
    """

    STEPS = 7

    @pytest.mark.parametrize("variant", ["branch", "modulo", "bitwise"])
    @pytest.mark.parametrize("layout", ["redundant", "standard"])
    def test_composite_fused_matches_split_numpy(self, variant, layout):
        base = {"position_update": variant, "field_layout": layout,
                "sort_period": 3}
        with _sim({**base, "loop_mode": "split", "backend": "numpy"},
                  steps=self.STEPS) as split_sim, \
             _sim({**base, "loop_mode": "fused", "backend": "fused-composite"},
                  steps=self.STEPS) as fused_sim:
            assert fused_sim.timings.loop_paths == {"fused-backend": self.STEPS}
            _assert_bitwise_equal_states(fused_sim, split_sim)

    def test_fused_matches_split_without_hoisting(self):
        # non-unit kick coefficients and position scales
        base = {"hoisting": False, "sort_period": 3}
        with _sim({**base, "loop_mode": "split", "backend": "numpy"},
                  steps=self.STEPS) as split_sim, \
             _sim({**base, "loop_mode": "fused", "backend": "fused-composite"},
                  steps=self.STEPS) as fused_sim:
            _assert_bitwise_equal_states(fused_sim, split_sim)


class TestCellwiseParallelDeposit:
    """§V-B private copies + reduction: bitwise thread invariance."""

    def _random_deposit_inputs(self, rng, n=5000):
        o = get_ordering("morton", 16, 16)
        ncells = o.ncells_allocated
        icell = rng.integers(0, ncells, n).astype(np.int64)
        return ncells, icell, rng.random(n), rng.random(n)

    @pytest.mark.parametrize("nthreads", [1, 2, 4, 7])
    def test_bitwise_equal_to_serial_for_any_thread_count(self, rng, nthreads):
        ncells, icell, dx, dy = self._random_deposit_inputs(rng)
        serial = np.zeros((ncells, 4))
        accumulate_redundant(serial, icell, dx, dy, 0.37)
        par = np.zeros((ncells, 4))
        cellwise_accumulate_redundant(par, icell, dx, dy, 0.37, nthreads)
        np.testing.assert_array_equal(par, serial)

    def test_accumulates_into_existing_density(self, rng):
        ncells, icell, dx, dy = self._random_deposit_inputs(rng, n=800)
        base = rng.random((ncells, 4))
        serial = base.copy()
        accumulate_redundant(serial, icell, dx, dy, -1.5)
        par = base.copy()
        cellwise_accumulate_redundant(par, icell, dx, dy, -1.5, 4)
        np.testing.assert_array_equal(par, serial)

    def test_stepper_routes_full_deposit_through_parallel_capability(self):
        calls = []
        orig = _FusedComposite.accumulate_redundant_parallel

        def spy(self, rho_1d, icell, dx, dy, charge=1.0):
            calls.append(len(np.asarray(icell)))
            orig(self, rho_1d, icell, dx, dy, charge)

        _FusedComposite.accumulate_redundant_parallel = spy
        try:
            with _sim({"loop_mode": "fused", "backend": "fused-composite"},
                      n=900, steps=2):
                pass
        finally:
            _FusedComposite.accumulate_redundant_parallel = orig
        # t=0 deposit + one per step: every one whole-array (n=900)
        assert calls and all(c == 900 for c in calls)


class TestLoopModeAutoTuner:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown loop mode"):
            LoopModeAutoTuner(candidates=("fused", "warp"))

    def test_requires_candidates_and_positive_trials(self):
        with pytest.raises(ValueError):
            LoopModeAutoTuner(candidates=())
        with pytest.raises(ValueError):
            LoopModeAutoTuner(trial_iterations=0)

    def test_trial_cycle_and_result(self):
        tuner = LoopModeAutoTuner(trial_iterations=2)
        assert tuner.mode == "fused" and not tuner.finished
        tuner.record(1.0)
        tuner.record(3.0)
        assert tuner.mode == "split"
        tuner.record(1.0)
        tuner.record(1.0)
        assert tuner.finished
        res = tuner.result()
        assert res.best_mode == "split"
        assert res.costs == {"fused": 2.0, "split": 1.0}
        assert res.cost_of("fused") == 2.0
        assert res.speedup() == 2.0
        # after finishing, .mode settles on the winner
        assert tuner.mode == "split"
        tuner.record(99.0)  # ignored once finished
        assert tuner.result().costs == res.costs

    def test_result_excludes_partial_trial(self):
        tuner = LoopModeAutoTuner(trial_iterations=2)
        with pytest.raises(RuntimeError):
            tuner.result()
        tuner.record(1.0)
        tuner.record(1.0)
        tuner.record(5.0)  # partial "split" trial
        res = tuner.result()
        assert set(res.costs) == {"fused"}

    def test_tune_loop_mode_measures_both_modes(self):
        def factory(cfg):
            return Simulation(
                GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi),
                LandauDamping(alpha=0.05), 400, cfg, dt=0.05, seed=3,
            )

        base = OptimizationConfig.fully_optimized().with_(backend="numpy")
        res = tune_loop_mode(factory, base, steps=2, warmup_steps=1)
        assert set(res.costs) == {"fused", "split"}
        assert res.best_mode in res.costs
        assert all(c > 0 for c in res.costs.values())
        assert res.speedup() >= 1.0

    def test_tune_loop_mode_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError, match="steps"):
            tune_loop_mode(lambda cfg: None, OptimizationConfig.baseline(),
                           steps=0)


class TestSupervisorDegradesFusedBackend:
    def test_fused_backend_degrades_to_numpy_bitwise(self):
        # chunk_size > n makes numpy's fused-chunked rendering a single
        # whole-array pass, bitwise-equal to the composite's fused
        # kernel — so the clean run, the pre-degradation steps and the
        # post-degradation steps must all agree exactly
        cfg_kw = {"loop_mode": "fused", "chunk_size": 10 ** 6,
                  "sort_period": 3}
        with _sim({**cfg_kw, "backend": "numpy"}, n=1200, seed=7) as clean:
            clean.run(12)
            clean_hist = clean.history

        inj = FaultInjector().add_kernel_raise(
            step=4, kernel="fused_interp_kick_push", backend="fused-composite",
        )
        sim = _sim({**cfg_kw, "backend": "fused-composite"}, n=1200, seed=7)
        with SupervisedRun(
            sim, checkpoint_every=3, max_retries=1, injector=inj,
        ) as sup:
            h = sup.run(12)
            assert sup.report.degradations == [
                {"step": 4, "from": "fused-composite", "to": "numpy"}
            ]
            assert sup.backend_name == "numpy"
            assert sup.sim.stepper.backend.name == "numpy"
            # the rebuilt stepper falls back to the chunked rendering
            assert "fused-chunked" in sup.sim.timings.loop_paths
            assert h.field_energy == clean_hist.field_energy
            assert h.kinetic_energy == clean_hist.kinetic_energy


# ----------------------------------------------------------------------
# Numba-gated: the real compiled kernels (skipped when numba is absent)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaFusedKernels:
    STEPS = 7

    @pytest.mark.parametrize("variant", ["branch", "modulo", "bitwise"])
    @pytest.mark.parametrize("layout", ["redundant", "standard"])
    def test_numba_fused_bitwise_matches_split_numpy(self, variant, layout):
        base = {"position_update": variant, "field_layout": layout,
                "sort_period": 3}
        with _sim({**base, "loop_mode": "split", "backend": "numpy"},
                  steps=self.STEPS) as split_sim, \
             _sim({**base, "loop_mode": "fused", "backend": "numba"},
                  steps=self.STEPS) as fused_sim:
            assert fused_sim.timings.loop_paths == {"fused-backend": self.STEPS}
            _assert_bitwise_equal_states(fused_sim, split_sim)

    def test_njit_counting_sort_matches_reference(self, rng):
        from repro.core.backends import get_backend
        from repro.particles.sorting import counting_sort_permutation_reference

        keys = rng.integers(0, 97, 4000).astype(np.int64)
        perm = get_backend("numba").counting_sort_permutation(keys, 97)
        np.testing.assert_array_equal(
            perm, counting_sort_permutation_reference(keys, 97)
        )

    def test_parallel_deposit_thread_count_invariant(self):
        """NUMBA_NUM_THREADS ∈ {1, 2, 4}: identical bits.

        Subprocesses because numba pins its thread count at the first
        parallel kernel launch in a process.
        """
        script = (
            "import hashlib, numpy as np\n"
            "from repro.core.backends import get_backend\n"
            "rng = np.random.default_rng(0)\n"
            "n, ncells = 20000, 256\n"
            "icell = rng.integers(0, ncells, n).astype(np.int64)\n"
            "dx, dy = rng.random(n), rng.random(n)\n"
            "rho = np.zeros((ncells, 4))\n"
            "get_backend('numba').accumulate_redundant_parallel("
            "rho, icell, dx, dy, 0.37)\n"
            "print(hashlib.sha256(rho.tobytes()).hexdigest())\n"
        )
        digests = {}
        for nthreads in (1, 2, 4):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, timeout=300,
                env={"PYTHONPATH": SRC, "NUMBA_NUM_THREADS": str(nthreads),
                     "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            digests[nthreads] = proc.stdout.strip()
        assert len(set(digests.values())) == 1, digests
        # ... and those bits are the serial numpy deposit's bits
        rng = np.random.default_rng(0)
        n, ncells = 20000, 256
        icell = rng.integers(0, ncells, n).astype(np.int64)
        dx, dy = rng.random(n), rng.random(n)
        rho = np.zeros((ncells, 4))
        accumulate_redundant(rho, icell, dx, dy, 0.37)
        import hashlib

        assert hashlib.sha256(rho.tobytes()).hexdigest() == digests[1]
