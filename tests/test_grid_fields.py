"""Field-layout tests: corner conventions, redundant round trips."""

import numpy as np
import pytest

from repro.curves import get_ordering
from repro.grid import (
    GridSpec,
    RedundantFields,
    StandardFields,
    corner_offsets,
    corner_weights,
)


class TestCornerWeights:
    def test_offsets_table(self):
        np.testing.assert_array_equal(
            corner_offsets(), [[0, 0], [0, 1], [1, 0], [1, 1]]
        )

    def test_weights_sum_to_one(self, rng):
        w = corner_weights(rng.random(1000), rng.random(1000))
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-14)

    def test_weights_at_lower_corner(self):
        w = corner_weights(np.array([0.0]), np.array([0.0]))
        np.testing.assert_allclose(w[0], [1, 0, 0, 0])

    def test_weights_at_upper_corner(self):
        w = corner_weights(np.array([1.0]), np.array([1.0]))
        np.testing.assert_allclose(w[0], [0, 0, 0, 1])

    def test_weights_match_bilinear_products(self, rng):
        dx = rng.random(50)
        dy = rng.random(50)
        w = corner_weights(dx, dy)
        np.testing.assert_allclose(w[:, 0], (1 - dx) * (1 - dy))
        np.testing.assert_allclose(w[:, 1], (1 - dx) * dy)
        np.testing.assert_allclose(w[:, 2], dx * (1 - dy))
        np.testing.assert_allclose(w[:, 3], dx * dy)

    def test_weights_nonnegative(self, rng):
        w = corner_weights(rng.random(200), rng.random(200))
        assert w.min() >= 0


class TestStandardFields:
    def test_shapes_and_reset(self, small_grid):
        f = StandardFields(small_grid)
        assert f.rho.shape == (16, 16)
        f.rho[3, 4] = 7.0
        f.reset_rho()
        assert f.rho.sum() == 0.0

    def test_set_field(self, small_grid, rng):
        f = StandardFields(small_grid)
        ex = rng.random((16, 16))
        ey = rng.random((16, 16))
        f.set_field_from_grid(ex, ey)
        np.testing.assert_array_equal(f.ex, ex)
        np.testing.assert_array_equal(f.ey, ey)

    def test_memory_accounting(self, small_grid):
        f = StandardFields(small_grid)
        assert f.memory_bytes == 3 * 16 * 16 * 8


@pytest.fixture(params=["row-major", "l4d", "morton", "hilbert"])
def redundant(request, small_grid):
    ordering = get_ordering(request.param, 16, 16)
    return RedundantFields(small_grid, ordering)


class TestRedundantFields:
    def test_allocation(self, redundant):
        assert redundant.rho_1d.shape == (redundant.ordering.ncells_allocated, 4)
        assert redundant.e_1d.shape == (redundant.ordering.ncells_allocated, 8)

    def test_memory_is_4x_standard_rho(self, small_grid, redundant):
        std = StandardFields(small_grid)
        # paper: the redundant structure needs four times more memory
        assert redundant.rho_1d.nbytes == 4 * std.rho.nbytes

    def test_rejects_mismatched_ordering(self, small_grid):
        with pytest.raises(ValueError):
            RedundantFields(small_grid, get_ordering("row-major", 8, 8))

    def test_field_broadcast_roundtrip(self, redundant, rng):
        ex = rng.random((16, 16))
        ey = rng.random((16, 16))
        redundant.load_field_from_grid(ex, ey)
        bx, by = redundant.field_at_grid()
        np.testing.assert_allclose(bx, ex)
        np.testing.assert_allclose(by, ey)

    def test_broadcast_corner_values_consistent(self, redundant, rng):
        """Every cell's corner c must hold E at grid point (ix+ox, iy+oy)."""
        ex = rng.random((16, 16))
        ey = rng.random((16, 16))
        redundant.load_field_from_grid(ex, ey)
        o = redundant.ordering
        idx = redundant.cell_index_map()
        for c, (ox, oy) in enumerate(corner_offsets()):
            gx = (np.arange(16)[:, None] + ox) % 16
            gy = (np.arange(16)[None, :] + oy) % 16
            np.testing.assert_allclose(redundant.e_1d[idx, c], ex[gx, gy])
            np.testing.assert_allclose(redundant.e_1d[idx, 4 + c], ey[gx, gy])

    def test_reduce_rho_folds_corners(self, redundant):
        """A unit charge written to all 4 corners of one cell lands on
        the cell's 4 surrounding grid points after reduction."""
        o = redundant.ordering
        icell = int(o.encode(3, 5))
        redundant.rho_1d[icell, :] = 1.0
        rho = redundant.reduce_rho_to_grid()
        assert rho[3, 5] == 1.0
        assert rho[3, 6] == 1.0
        assert rho[4, 5] == 1.0
        assert rho[4, 6] == 1.0
        assert rho.sum() == 4.0

    def test_reduce_rho_periodic_edges(self, redundant):
        o = redundant.ordering
        icell = int(o.encode(15, 15))
        redundant.rho_1d[icell, 3] = 2.0  # corner (+1, +1) wraps to (0, 0)
        rho = redundant.reduce_rho_to_grid()
        assert rho[0, 0] == 2.0

    def test_reduce_conserves_total(self, redundant, rng):
        redundant.rho_1d[: redundant.ordering.ncells] = rng.random(
            (redundant.ordering.ncells, 4)
        )
        total = redundant.rho_1d.sum()
        assert redundant.reduce_rho_to_grid().sum() == pytest.approx(total)

    def test_reset_rho(self, redundant):
        redundant.rho_1d[:] = 3.0
        redundant.reset_rho()
        assert redundant.rho_1d.sum() == 0.0

    def test_cell_index_map_readonly(self, redundant):
        m = redundant.cell_index_map()
        with pytest.raises(ValueError):
            m[0, 0] = 1

    def test_rho_grid_alias(self, redundant):
        redundant.rho_1d[0, 0] = 1.0
        np.testing.assert_array_equal(
            redundant.rho_grid(), redundant.reduce_rho_to_grid()
        )

    def test_load_field_validates_shape(self, redundant):
        with pytest.raises(ValueError):
            redundant.load_field_from_grid(np.zeros((8, 8)), np.zeros((8, 8)))
