"""Tiled binning, the density-aware deposit, and the continuous tuner.

Three promise surfaces of the adaptive layer (see docs/tuning.md):

* the fine-grain binning in ``particles/sorting.py`` — stable block
  grouping whose composed permutations reproduce the whole-grid
  counting sort bitwise at every block size;
* the density-aware deposit dispatcher in ``core/deposit.py`` — every
  per-block variant mix (serial / shard / parallel, any block size ×
  thread count × threshold pair) must equal one whole-grid serial
  deposit bit for bit, kernel-level and through full stepper runs;
* the continuous ``LoopModeAutoTuner`` — settle / probe / switch /
  keep semantics, and the hysteresis band that forbids path thrashing
  under sub-threshold noise.

Plus the bookkeeping: executed-variant counts and autotune decisions
must land in ``StepTimings`` and survive the JSON round-trip.
"""

import json

import numpy as np
import pytest

from repro.core import OptimizationConfig, Simulation, StepTimings
from repro.core.autotune import LoopModeAutoTuner
from repro.core.backends import NumpyBackend, get_backend
from repro.core.deposit import (
    DEFAULT_DEPOSIT_THRESHOLDS,
    accumulate_redundant_tiled,
    choose_deposit_variant,
)
from repro.core.kernels import accumulate_redundant
from repro.grid import GridSpec
from repro.particles import LandauDamping
from repro.particles.sorting import (
    BlockBins,
    bin_particles_by_block,
    block_histogram,
    counting_sort_permutation,
    tiled_counting_sort_permutation,
)

NCELLS = 256
BLOCK_SIZES = (1, 4, 64, NCELLS)  # per-cell, small, cache-sized, whole-grid
THREAD_COUNTS = (1, 2, 7)
THRESHOLD_PAIRS = (
    DEFAULT_DEPOSIT_THRESHOLDS,  # mixed decisions
    (0.0, 0.0),                  # everything dense -> parallel/shard
    (1e30, 2e30),                # everything sparse -> serial (coalesces)
    (2.0, 3.0),                  # tight band -> rich serial/shard/parallel mix
)


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(7)
    n = 20_000
    return (
        rng.integers(0, NCELLS, n).astype(np.int64),
        rng.random(n),
        rng.random(n),
    )


# ---------------------------------------------------------------------------
# binning
# ---------------------------------------------------------------------------


class TestBinning:
    def test_blockbins_invariants(self, particles):
        icell, _, _ = particles
        for bs in BLOCK_SIZES:
            bins = bin_particles_by_block(icell, NCELLS, bs)
            assert isinstance(bins, BlockBins)
            assert bins.nblocks == -(-NCELLS // bs)
            assert int(bins.counts.sum()) == icell.size
            assert bins.starts[0] == 0 and bins.starts[-1] == icell.size
            # perm is a permutation, grouped by block, stable within
            assert np.array_equal(np.sort(bins.perm), np.arange(icell.size))
            for b in range(bins.nblocks):
                idx = bins.particles_of(b)
                lo, hi = bins.cell_range(b)
                assert np.all((icell[idx] >= lo) & (icell[idx] < hi))
                assert np.all(np.diff(idx) > 0)  # stability: input order

    def test_block_histogram_matches_bins(self, particles):
        icell, _, _ = particles
        for bs in BLOCK_SIZES:
            np.testing.assert_array_equal(
                block_histogram(icell, NCELLS, bs),
                bin_particles_by_block(icell, NCELLS, bs).counts,
            )

    def test_cell_range_clamps_last_block(self):
        bins = bin_particles_by_block(np.array([0, 9]), 10, 4)
        assert bins.nblocks == 3
        assert bins.cell_range(2) == (8, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_particles_by_block(np.array([0]), 10, 0)
        with pytest.raises(ValueError):
            bin_particles_by_block(np.array([10]), 10, 4)
        with pytest.raises(ValueError):
            block_histogram(np.array([-1]), 10, 4)

    def test_empty_population(self):
        bins = bin_particles_by_block(np.empty(0, dtype=np.int64), NCELLS, 8)
        assert bins.perm.size == 0
        assert int(bins.counts.sum()) == 0

    @pytest.mark.parametrize("bs", BLOCK_SIZES + (300,))
    def test_tiled_sort_equals_whole_grid_sort(self, particles, bs):
        icell, _, _ = particles
        np.testing.assert_array_equal(
            tiled_counting_sort_permutation(icell, NCELLS, bs),
            counting_sort_permutation(icell, NCELLS),
        )


# ---------------------------------------------------------------------------
# the density dispatcher
# ---------------------------------------------------------------------------


class TestChooseVariant:
    def test_empty_block_is_none(self):
        assert choose_deposit_variant(0, 4) is None

    def test_density_bands(self):
        lo, hi = 4.0, 64.0
        assert choose_deposit_variant(4, 1, (lo, hi)) == "serial"
        assert choose_deposit_variant(5, 1, (lo, hi)) == "shard"
        assert choose_deposit_variant(64, 1, (lo, hi)) == "parallel"
        # dense checked first: degenerate (0, 0) sends everything parallel
        assert choose_deposit_variant(1, 64, (0.0, 0.0)) == "parallel"


class TestDepositBitwise:
    @pytest.mark.parametrize("bs", BLOCK_SIZES)
    @pytest.mark.parametrize("nthreads", THREAD_COUNTS)
    def test_equals_serial_for_all_thresholds(self, particles, bs, nthreads):
        icell, dx, dy = particles
        backend = get_backend("numpy")
        charge = -0.37
        oracle = np.zeros((NCELLS, 4))
        accumulate_redundant(oracle, icell, dx, dy, charge)
        for thresholds in THRESHOLD_PAIRS:
            rho = np.zeros((NCELLS, 4))
            accumulate_redundant_tiled(
                backend, rho, icell, dx, dy, charge,
                block_size=bs, thresholds=thresholds, nthreads=nthreads,
            )
            assert rho.tobytes() == oracle.tobytes(), (bs, nthreads, thresholds)

    def test_variant_ledger_counts_blocks(self, particles):
        icell, dx, dy = particles
        backend = get_backend("numpy")
        rho = np.zeros((NCELLS, 4))
        counts = accumulate_redundant_tiled(
            backend, rho, icell, dx, dy,
            block_size=64, thresholds=(1e30, 2e30),
        )
        # all-sparse coalesces into one whole-grid pass
        assert counts == {"serial": NCELLS // 64, "coalesced": 1}
        rho = np.zeros((NCELLS, 4))
        counts = accumulate_redundant_tiled(
            backend, rho, icell, dx, dy,
            block_size=64, thresholds=(0.0, 0.0), nthreads=2,
        )
        # everything dense; numpy has no parallel_deposit -> shard
        assert counts == {"shard": NCELLS // 64}

    def test_one_thread_shard_runs_as_serial(self, particles):
        icell, dx, dy = particles
        backend = get_backend("numpy")
        rho = np.zeros((NCELLS, 4))
        counts = accumulate_redundant_tiled(
            backend, rho, icell, dx, dy,
            block_size=64, thresholds=(0.0, 0.0), nthreads=1,
        )
        assert counts == {"serial": NCELLS // 64, "coalesced": 1}

    def test_backend_method_requires_capability(self, particles):
        icell, dx, dy = particles

        class NoTiling(NumpyBackend):
            capabilities = frozenset()

        rho = np.zeros((NCELLS, 4))
        with pytest.raises(NotImplementedError):
            NoTiling().accumulate_redundant_tiled(
                rho, icell, dx, dy, block_size=8
            )

    def test_rejects_bad_nthreads(self, particles):
        icell, dx, dy = particles
        with pytest.raises(ValueError):
            accumulate_redundant_tiled(
                get_backend("numpy"), np.zeros((NCELLS, 4)), icell, dx, dy,
                block_size=8, nthreads=0,
            )


# ---------------------------------------------------------------------------
# stepper-level equivalence and bookkeeping
# ---------------------------------------------------------------------------


def _run(config, steps=25, n=3000):
    grid = GridSpec(32, 16, 0.0, 4 * np.pi, 0.0, 2 * np.pi)
    sim = Simulation(grid, LandauDamping(alpha=0.1), n, config,
                     dt=0.05, seed=3, quiet=True)
    sim.run(steps)
    return sim


class TestStepperIntegration:
    @pytest.mark.parametrize("overrides", [
        dict(block_size=1),
        dict(block_size=4, deposit_threads=2),
        dict(block_size=64, deposit_thresholds=(0.5, 2.0), deposit_threads=7),
    ])
    def test_tiled_run_bitwise_equals_untiled(self, overrides):
        base = OptimizationConfig.fully_optimized().with_(backend="numpy")
        ref = _run(base)
        tiled = _run(base.with_(**overrides))
        for name in ("dx", "dy", "vx", "vy", "icell"):
            a = getattr(ref.stepper.particles, name)
            b = getattr(tiled.stepper.particles, name)
            assert np.asarray(a).tobytes() == np.asarray(b).tobytes(), name
        assert (ref.stepper.fields.rho_1d.tobytes()
                == tiled.stepper.fields.rho_1d.tobytes())

    def test_variants_recorded_and_roundtripped(self):
        cfg = OptimizationConfig.fully_optimized().with_(
            backend="numpy", block_size=4, deposit_thresholds=(0.5, 2.0),
            deposit_threads=2,
        )
        sim = _run(cfg, steps=10)
        variants = sim.timings.deposit_variants
        assert variants and sum(variants.values()) > 0
        doc = json.loads(sim.timings_json())
        assert doc["cumulative"]["deposit_variants"] == variants
        restored = StepTimings.from_json(json.dumps(doc["cumulative"]))
        assert restored.deposit_variants == variants
        # per-step records carry the per-step slice
        assert any("deposit_variants" in rec for rec in doc["per_step"])

    def test_block_size_ignored_without_redundant_layout(self):
        cfg = OptimizationConfig.with_loop_splitting().with_(
            backend="numpy", block_size=8
        )
        sim = _run(cfg, steps=5)
        assert sim.timings.deposit_variants == {}

    def test_auto_loop_mode_runs_and_records_decisions(self):
        cfg = OptimizationConfig.fully_optimized().with_(
            backend="numpy", loop_mode="auto"
        )
        sim = _run(cfg, steps=40)
        events = [d["event"] for d in sim.timings.autotune]
        assert events[0] == "settle"
        assert "probe" in events
        doc = json.loads(sim.timings_json())
        assert doc["cumulative"]["autotune"] == sim.timings.autotune
        restored = StepTimings.from_json(json.dumps(doc["cumulative"]))
        assert restored.autotune == sim.timings.autotune
        # both structures were actually exercised at least once
        assert len(sim.timings.loop_paths) >= 2


# ---------------------------------------------------------------------------
# the continuous autotuner
# ---------------------------------------------------------------------------


def _tuner(**kw):
    kw.setdefault("continuous", True)
    kw.setdefault("trial_iterations", 2)
    kw.setdefault("recheck_every", 5)
    kw.setdefault("probe_iterations", 2)
    return LoopModeAutoTuner(**kw)


def _drive_trials(tuner, fused_cost, split_cost):
    costs = {"fused": fused_cost, "split": split_cost}
    while not tuner.finished:
        tuner.record(costs[tuner.mode])


class TestContinuousTuner:
    def test_settle_decision_after_trials(self):
        tuner = _tuner()
        _drive_trials(tuner, fused_cost=2.0, split_cost=1.0)
        assert tuner.mode == "split"
        assert [d["event"] for d in tuner.decisions] == ["settle"]
        assert tuner.decisions[0]["mode"] == "split"
        assert tuner.ewma == {"fused": 2.0, "split": 1.0}

    def test_probe_then_switch_when_alternate_wins(self):
        # a long-enough probe lets the fresh evidence outweigh the
        # stale trial seed in the alternate's EWMA
        tuner = _tuner(probe_iterations=6)
        _drive_trials(tuner, fused_cost=2.0, split_cost=1.0)
        # steady state: split runs, but the world changed — fused is
        # now far cheaper, so the scheduled probe must flip the mode
        for _ in range(5):
            assert tuner.mode == "split"
            tuner.record(1.0)
        assert tuner.decisions[-1]["event"] == "probe"
        for _ in range(6):
            assert tuner.mode == "fused"  # probing
            tuner.record(0.2)
        assert tuner.decisions[-1]["event"] == "switch"
        assert tuner.decisions[-1]["to"] == "fused"
        assert tuner.mode == "fused"

    def test_hysteresis_no_flip_under_small_noise(self):
        """<5% cost noise must never change the loop path."""
        tuner = _tuner(hysteresis=0.05)
        _drive_trials(tuner, fused_cost=2.0, split_cost=1.0)
        rng = np.random.default_rng(11)
        for _ in range(200):
            mode = tuner.mode
            # alternate reads up to 4% cheaper than incumbent: inside
            # the hysteresis band either way
            base = 1.0 if mode == "split" else 0.97
            tuner.record(base * (1.0 + 0.01 * rng.standard_normal()))
        events = {d["event"] for d in tuner.decisions}
        assert "switch" not in events
        assert "keep" in events  # probes happened, all rejected
        assert tuner.mode == "split"

    def test_decisions_deterministic_for_same_costs(self):
        def run():
            tuner = _tuner()
            _drive_trials(tuner, fused_cost=1.0, split_cost=2.0)
            for i in range(40):
                tuner.record(1.0 + 0.5 * (i % 3 == 0))
            return tuner.decisions

        assert run() == run()

    def test_one_shot_ignores_post_trial_records(self):
        tuner = LoopModeAutoTuner(trial_iterations=1)
        tuner.record(2.0)  # fused
        tuner.record(1.0)  # split
        assert tuner.finished
        tuner.record(99.0)  # ignored: not continuous
        assert tuner.mode == "split"
        assert tuner.decisions == []

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopModeAutoTuner(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            LoopModeAutoTuner(hysteresis=-0.1)
        with pytest.raises(ValueError):
            LoopModeAutoTuner(recheck_every=0)
        with pytest.raises(ValueError):
            LoopModeAutoTuner(probe_iterations=0)
