"""Stepper tests: construction, invariants, config equivalence."""

import numpy as np
import pytest

from repro.core import OptimizationConfig, PICStepper
from repro.grid import GridSpec
from repro.particles import LandauDamping


@pytest.fixture
def grid():
    return GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)


def make_stepper(grid, cfg, n=4000, **kw):
    kw.setdefault("dt", 0.1)
    kw.setdefault("quiet", True)
    kw.setdefault("seed", None)
    return PICStepper(grid, cfg, case=LandauDamping(alpha=0.05), n_particles=n, **kw)


class TestConstruction:
    def test_rejects_bitwise_on_non_pow2(self):
        g = GridSpec(12, 16)
        with pytest.raises(ValueError, match="power-of-two"):
            PICStepper(g, OptimizationConfig.fully_optimized(), case=LandauDamping(), n_particles=10)

    def test_rejects_particles_and_case(self, grid):
        from repro.particles import make_storage

        with pytest.raises(ValueError):
            PICStepper(
                grid,
                OptimizationConfig.fully_optimized(),
                particles=make_storage("soa", 10),
                case=LandauDamping(),
            )

    def test_rejects_neither(self, grid):
        with pytest.raises(ValueError):
            PICStepper(grid, OptimizationConfig.fully_optimized())

    def test_rejects_store_coords_mismatch(self, grid):
        from repro.particles import make_storage

        parts = make_storage("soa", 10, store_coords=False)
        with pytest.raises(ValueError, match="store_coords"):
            PICStepper(grid, OptimizationConfig.fully_optimized(), particles=parts)

    def test_field_layout_selected(self, grid):
        s1 = make_stepper(grid, OptimizationConfig.baseline(), n=500)
        assert s1.fields.layout == "standard"
        s2 = make_stepper(grid, OptimizationConfig.fully_optimized(), n=500)
        assert s2.fields.layout == "redundant"

    def test_initial_fields_computed(self, grid):
        s = make_stepper(grid, OptimizationConfig.fully_optimized(), n=5000)
        # Landau perturbation must produce a nonzero initial Ex
        assert np.abs(s.ex_grid).max() > 0
        assert s.rho_grid.shape == (16, 16)


class TestStepInvariants:
    @pytest.fixture
    def stepper(self, grid):
        return make_stepper(grid, OptimizationConfig.fully_optimized(), n=5000)

    def test_iteration_counter(self, stepper):
        stepper.run(3)
        assert stepper.iteration == 3
        assert stepper.timings.steps == 3

    def test_offsets_stay_in_unit_interval(self, stepper):
        stepper.run(5)
        assert np.asarray(stepper.particles.dx).min() >= 0
        assert np.asarray(stepper.particles.dx).max() <= 1.0
        assert np.asarray(stepper.particles.dy).min() >= 0
        assert np.asarray(stepper.particles.dy).max() <= 1.0

    def test_cells_stay_in_range(self, stepper):
        stepper.run(5)
        icell = np.asarray(stepper.particles.icell)
        assert icell.min() >= 0
        assert icell.max() < stepper.ordering.ncells_allocated

    def test_total_charge_invariant(self, stepper):
        q0 = stepper.rho_grid.sum()
        stepper.run(5)
        assert stepper.rho_grid.sum() == pytest.approx(q0, abs=1e-9)

    def test_sort_applied_on_schedule(self, grid):
        s = make_stepper(
            grid, OptimizationConfig.fully_optimized().with_(sort_period=3), n=3000
        )
        s.run(3)  # iterations 0,1,2: sort happens at the start of step 3
        before = np.asarray(s.particles.icell).copy()
        s.step()
        after = np.asarray(s.particles.icell)
        assert np.all(np.diff(after) >= 0) or not np.array_equal(before, after)

    def test_no_sort_when_disabled(self, grid):
        s = make_stepper(
            grid, OptimizationConfig.fully_optimized().with_(sort_period=0), n=3000
        )
        s.run(6)
        assert s.timings.sort == pytest.approx(0.0, abs=1e-3)

    def test_physical_velocities_scale(self, grid):
        hoisted = make_stepper(grid, OptimizationConfig.fully_optimized(), n=2000)
        raw = make_stepper(
            grid, OptimizationConfig.fully_optimized().with_(hoisting=False), n=2000
        )
        vxh, vyh = hoisted.physical_velocities()
        vxr, vyr = raw.physical_velocities()
        np.testing.assert_allclose(vxh, vxr, atol=1e-12)
        np.testing.assert_allclose(vyh, vyr, atol=1e-12)

    def test_timings_accumulate(self, stepper):
        stepper.run(2)
        t = stepper.timings
        assert t.total > 0
        assert t.update_v > 0 and t.update_x > 0 and t.accumulate > 0
        assert set(t.as_dict()) == {
            "update_v", "update_x", "fused", "accumulate", "sort", "solve",
            "total",
        }


class TestConfigEquivalence:
    """Every optimization level must compute identical physics."""

    REFERENCE_STEPS = 8

    @pytest.fixture(scope="class")
    def reference_energy(self, ):
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        s = make_stepper(grid, OptimizationConfig.baseline(), n=4000)
        s.run(self.REFERENCE_STEPS)
        return 0.5 * np.sum(s.ex_grid**2 + s.ey_grid**2)

    @pytest.mark.parametrize(
        "label,cfg",
        [(label, cfg) for label, cfg in OptimizationConfig.table4_stack()[1:]],
    )
    def test_table4_rows_bitwise_equal_physics(self, grid, reference_energy, label, cfg):
        s = make_stepper(grid, cfg, n=4000)
        s.run(self.REFERENCE_STEPS)
        fe = 0.5 * np.sum(s.ex_grid**2 + s.ey_grid**2)
        assert fe == pytest.approx(reference_energy, rel=1e-9), label

    @pytest.mark.parametrize("ordering", ["row-major", "column-major", "l4d", "morton", "hilbert"])
    def test_orderings_equal_physics(self, grid, reference_energy, ordering):
        cfg = OptimizationConfig.fully_optimized().with_(
            ordering=ordering, store_coords=None
        )
        s = make_stepper(grid, cfg, n=4000)
        s.run(self.REFERENCE_STEPS)
        fe = 0.5 * np.sum(s.ex_grid**2 + s.ey_grid**2)
        assert fe == pytest.approx(reference_energy, rel=1e-9), ordering

    def test_chunk_size_irrelevant(self, grid, reference_energy):
        cfg = OptimizationConfig.baseline().with_(chunk_size=17)
        s = make_stepper(grid, cfg, n=4000)
        s.run(self.REFERENCE_STEPS)
        fe = 0.5 * np.sum(s.ex_grid**2 + s.ey_grid**2)
        assert fe == pytest.approx(reference_energy, rel=1e-9)

    def test_sort_variants_equal_physics(self, grid, reference_energy):
        for variant in ("out-of-place", "in-place"):
            cfg = OptimizationConfig.baseline().with_(
                sort_period=3, sort_variant=variant
            )
            s = make_stepper(grid, cfg, n=4000)
            s.run(self.REFERENCE_STEPS)
            fe = 0.5 * np.sum(s.ex_grid**2 + s.ey_grid**2)
            assert fe == pytest.approx(reference_energy, rel=1e-9), variant
