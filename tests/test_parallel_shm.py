"""Tests for the real shared-memory multiprocessing engine (numpy-mp).

The contract under test (docs/parallelism.md): running the three §V
particle loops across worker processes is *bitwise* identical to the
serial numpy backend — same ρ, same E, same particle state — at any
worker count, run after run, and even when workers are killed mid-step
(the parent recomputes the lost shards serially).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.backends import get_backend
from repro.core.config import OptimizationConfig
from repro.core.simulation import Simulation
from repro.grid.spec import GridSpec
from repro.parallel.executor import MultiprocessBackend, WorkerPool
from repro.particles.initializers import LandauDamping

pytestmark = pytest.mark.skipif(
    not MultiprocessBackend.is_available(),
    reason="POSIX shared memory / multiprocessing unavailable",
)

#: small enough to be quick, sorts twice within the run
N_PARTICLES = 2000
N_STEPS = 7
SORT_PERIOD = 3


def _make_sim(backend, workers=None, **cfg_kw):
    cfg = OptimizationConfig(
        backend=backend,
        workers=workers,
        particle_layout="soa",
        field_layout="redundant",
        loop_mode="split",
        sort_period=SORT_PERIOD,
        **cfg_kw,
    )
    grid = GridSpec(16, 16)
    return Simulation(grid, LandauDamping(), N_PARTICLES, cfg, dt=0.05, seed=7)


def _state(sim):
    """Bitwise-comparable snapshot: fields + particle attribute arrays."""
    st = sim.stepper
    p = st.particles
    out = {
        "rho": st.rho_grid.copy(),
        "ex": st.ex_grid.copy(),
        "ey": st.ey_grid.copy(),
    }
    for a in ("vx", "vy", "icell", "dx", "dy"):
        out[a] = getattr(p, a).copy()
    return out


def _assert_bitwise_equal(sa, sb):
    for key in sa:
        assert np.array_equal(sa[key], sb[key]), f"{key} differs bitwise"


def _engine(sim):
    return sim.stepper.backend.engine_for(sim.stepper)


# ----------------------------------------------------------------------
# Bitwise equivalence with the serial backend
# ----------------------------------------------------------------------
class TestBitwiseEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_matches_numpy_backend(self, workers):
        with _make_sim("numpy") as ref, _make_sim("numpy-mp", workers) as mp:
            assert _engine(mp) is not None, "engine should be active"
            ref.run(N_STEPS)
            mp.run(N_STEPS)
            assert mp.timings.fallbacks == 0
            _assert_bitwise_equal(_state(ref), _state(mp))

    def test_repeated_runs_are_deterministic(self):
        with _make_sim("numpy-mp", 2) as a, _make_sim("numpy-mp", 2) as b:
            a.run(N_STEPS)
            b.run(N_STEPS)
            _assert_bitwise_equal(_state(a), _state(b))

    def test_worker_phase_timings_recorded(self):
        with _make_sim("numpy-mp", 2) as mp:
            mp.run(2)
            phases = mp.timings.worker_phases
            assert sorted(phases) == ["worker0", "worker1"]
            # every worker did real work in each particle loop
            for per in phases.values():
                assert per["update_v"] > 0.0
                assert per["update_x"] > 0.0
                assert per["accumulate"] > 0.0
            rec = mp.timings.as_record()
            assert rec["fallbacks"] == 0
            assert sorted(rec["workers"]) == ["worker0", "worker1"]


# ----------------------------------------------------------------------
# Fault tolerance
# ----------------------------------------------------------------------
class TestFaultTolerance:
    #: bounds the damage if recovery ever regresses: a dispatch that
    #: loses track of a shard costs seconds, not the 60s default
    TIMEOUT_KW = {"mp_task_timeout": 10.0}

    def test_killed_worker_falls_back_serially_bitwise(self):
        with (
            _make_sim("numpy") as ref,
            _make_sim("numpy-mp", 2, **self.TIMEOUT_KW) as mp,
        ):
            ref.run(N_STEPS)
            eng = _engine(mp)
            mp.run(2)
            eng.pool.kill_worker(0)
            mp.run(1)  # crash detected here; shards recomputed serially
            mp.run(N_STEPS - 3)
            assert mp.timings.fallbacks > 0
            assert eng.pool.restarts >= 1
            _assert_bitwise_equal(_state(ref), _state(mp))

    def test_heartbeat_reports_and_recovers(self):
        with _make_sim("numpy-mp", 2, **self.TIMEOUT_KW) as mp:
            eng = _engine(mp)
            assert eng.ping() == [True, True]
            eng.pool.kill_worker(1)
            eng.ping()  # detects the corpse and respawns it
            assert eng.ping() == [True, True]

    def test_pool_timeout_kills_hung_worker(self):
        pool = WorkerPool(2, timeout=0.25)
        try:
            done, failed = pool.run_shards(
                [(0, {"op": "sleep", "seconds": 30.0}), (1, {"op": "ping"})]
            )
            assert [wid for (wid, _m), _s in done] == [1]
            assert [wid for wid, _m in failed] == [0]
            assert pool.restarts == 1
            assert pool.ping() == [True, True]  # replacement is healthy
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Resource lifecycle
# ----------------------------------------------------------------------
class TestResourceLifecycle:
    def test_close_unlinks_all_shared_segments(self):
        sim = _make_sim("numpy-mp", 2)
        eng = _engine(sim)
        segs = list(eng.arena.segment_names)
        assert segs, "engine should have allocated shared segments"
        sim.run(2)
        sim.close()
        if os.path.isdir("/dev/shm"):
            left = [s for s in segs if os.path.exists("/dev/shm/" + s)]
            assert left == [], f"leaked shared-memory segments: {left}"
        # idempotent: a second close must not raise
        sim.close()

    def test_release_detaches_engine(self):
        sim = _make_sim("numpy-mp", 2)
        backend = sim.stepper.backend
        stepper = sim.stepper
        sim.close()
        assert backend.engine_for(stepper) is None


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestFallbackPaths:
    def test_plain_arrays_use_serial_kernels(self, rng):
        """Direct kernel calls on non-shared arrays match numpy exactly."""
        npb = get_backend("numpy")
        mpb = get_backend("numpy-mp")
        n, ncells = 500, 64
        e_1d = rng.random((ncells, 8))
        icell = rng.integers(0, ncells, n)
        dx, dy = rng.random(n), rng.random(n)
        ex_a, ey_a = npb.interpolate_redundant(e_1d, icell, dx, dy)
        ex_b, ey_b = mpb.interpolate_redundant(e_1d, icell, dx, dy)
        assert np.array_equal(ex_a, ex_b) and np.array_equal(ey_a, ey_b)
        rho_a = np.zeros((ncells, 4))
        rho_b = np.zeros((ncells, 4))
        npb.accumulate_redundant(rho_a, icell, dx, dy)
        mpb.accumulate_redundant(rho_b, icell, dx, dy)
        assert np.array_equal(rho_a, rho_b)

    def test_ineligible_layout_runs_without_engine(self):
        """standard field layout is not shardable -> serial kernels, no engine."""
        cfg = OptimizationConfig(
            backend="numpy-mp",
            particle_layout="soa",
            field_layout="standard",
            loop_mode="split",
        )
        with Simulation(GridSpec(16, 16), LandauDamping(), 500, cfg, seed=7) as sim:
            assert _engine(sim) is None
            sim.run(2)  # must still advance correctly

    def test_config_rejects_bad_worker_counts(self):
        with pytest.raises(ValueError):
            OptimizationConfig(workers=0)
        with pytest.raises(ValueError):
            OptimizationConfig(mp_task_timeout=0.0)
