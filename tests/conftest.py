"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves import get_ordering
from repro.grid import GridSpec


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid():
    """A 16x16 grid on [0, 4pi)^2 — small enough for scalar oracles."""
    return GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)


@pytest.fixture(params=["row-major", "column-major", "l4d", "morton", "hilbert"])
def any_ordering(request):
    """Each registered ordering on a 16x16 grid."""
    return get_ordering(request.param, 16, 16)


def random_particle_arrays(rng, n, ncx, ncy):
    """Plain attribute arrays for n random in-bounds particles."""
    ix = rng.integers(0, ncx, n)
    iy = rng.integers(0, ncy, n)
    dx = rng.random(n)
    dy = rng.random(n)
    vx = rng.normal(0, 1, n)
    vy = rng.normal(0, 1, n)
    return ix, iy, dx, dy, vx, vy
