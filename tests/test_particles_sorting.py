"""Sorting tests: counting-sort variants, parallel partition safety."""

import numpy as np
import pytest

from repro.particles import (
    counting_sort_permutation,
    counting_sort_permutation_reference,
    make_storage,
    parallel_counting_sort_permutation,
    sort_in_place,
    sort_out_of_place,
)


class TestCountingSortPermutation:
    def test_sorts_keys(self, rng):
        keys = rng.integers(0, 32, 500)
        perm = counting_sort_permutation(keys, 32)
        assert np.all(np.diff(keys[perm]) >= 0)

    def test_is_permutation(self, rng):
        keys = rng.integers(0, 8, 100)
        perm = counting_sort_permutation(keys, 8)
        assert sorted(perm) == list(range(100))

    def test_stability(self):
        keys = np.array([2, 1, 2, 1, 2])
        perm = counting_sort_permutation(keys, 3)
        # equal keys keep input order
        np.testing.assert_array_equal(perm, [1, 3, 0, 2, 4])

    def test_matches_reference(self, rng):
        keys = rng.integers(0, 16, 300)
        fast = counting_sort_permutation(keys, 16)
        ref = counting_sort_permutation_reference(keys, 16)
        np.testing.assert_array_equal(fast, ref)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            counting_sort_permutation(np.array([0, 5]), 4)
        with pytest.raises(ValueError):
            counting_sort_permutation(np.array([-1, 2]), 4)

    def test_empty(self):
        assert len(counting_sort_permutation(np.array([], dtype=int), 4)) == 0


class TestParallelCountingSort:
    def test_same_result_any_thread_count(self, rng):
        keys = rng.integers(0, 64, 1000)
        serial = counting_sort_permutation(keys, 64)
        for t in (1, 2, 3, 7, 16):
            perm, _ = parallel_counting_sort_permutation(keys, 64, t)
            np.testing.assert_array_equal(perm, serial, err_msg=f"t={t}")

    def test_slices_disjoint_and_cover(self, rng):
        keys = rng.integers(0, 64, 500)
        _, slices = parallel_counting_sort_permutation(keys, 64, 5)
        covered = []
        for sl in slices:
            covered.extend(range(sl.start, sl.stop))
        assert sorted(covered) == list(range(500))

    def test_each_thread_writes_only_its_cells(self, rng):
        keys = rng.integers(0, 60, 400)
        perm, slices = parallel_counting_sort_permutation(keys, 60, 4)
        bounds = np.linspace(0, 60, 5).astype(int)
        for t, sl in enumerate(slices):
            written_keys = keys[perm[sl]]
            if len(written_keys):
                assert written_keys.min() >= bounds[t]
                assert written_keys.max() < bounds[t + 1]

    def test_more_threads_than_cells(self, rng):
        keys = rng.integers(0, 4, 50)
        perm, slices = parallel_counting_sort_permutation(keys, 4, 16)
        assert len(slices) == 16
        np.testing.assert_array_equal(keys[perm], np.sort(keys))

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            parallel_counting_sort_permutation(np.array([0]), 1, 0)


@pytest.mark.parametrize("layout", ["soa", "aos"])
class TestStorageSorting:
    def _storage(self, layout, rng, n=200, ncells=32):
        s = make_storage(layout, n, store_coords=True)
        s.set_state(
            rng.integers(0, ncells, n),
            rng.random(n),
            rng.random(n),
            rng.normal(size=n),
            rng.normal(size=n),
            rng.integers(0, 8, n),
            rng.integers(0, 4, n),
        )
        return s

    def test_out_of_place_sorts(self, layout, rng):
        s = self._storage(layout, rng)
        before = s.as_dict()
        out = sort_out_of_place(s, 32)
        assert np.all(np.diff(np.asarray(out.icell)) >= 0)
        # attribute tuples move together: total content preserved
        order = np.argsort(before["icell"], kind="stable")
        np.testing.assert_array_equal(np.asarray(out.vx), before["vx"][order])

    def test_out_of_place_reuses_buffer(self, layout, rng):
        s = self._storage(layout, rng)
        buf = s.clone_empty()
        out = sort_out_of_place(s, 32, buffer=buf)
        assert out is buf

    def test_in_place_sorts(self, layout, rng):
        s = self._storage(layout, rng)
        before = s.as_dict()
        sort_in_place(s, 32)
        assert np.all(np.diff(np.asarray(s.icell)) >= 0)
        order = np.argsort(before["icell"], kind="stable")
        for k in before:
            np.testing.assert_array_equal(
                np.asarray(getattr(s, k)), before[k][order], err_msg=k
            )

    def test_in_place_equals_out_of_place(self, layout, rng):
        s1 = self._storage(layout, rng)
        s2 = make_storage(layout, s1.n, store_coords=True)
        s2.set_state(**s1.as_dict())
        out = sort_out_of_place(s1, 32)
        sort_in_place(s2, 32)
        for k in ("icell", "dx", "vx", "iy"):
            np.testing.assert_array_equal(
                np.asarray(getattr(out, k)), np.asarray(getattr(s2, k))
            )

    def test_already_sorted_is_identity(self, layout, rng):
        s = self._storage(layout, rng)
        out1 = sort_out_of_place(s, 32)
        snapshot = out1.as_dict()
        sort_in_place(out1, 32)
        for k, v in snapshot.items():
            np.testing.assert_array_equal(np.asarray(getattr(out1, k)), v)

    def test_in_place_take_path_equals_cycle_path(self, layout, rng):
        # above the threshold the in-place sort switches from the
        # cycle-following walk to whole-array np.take permutation
        # application; both must land the same bits
        cyc = self._storage(layout, rng)
        tak = make_storage(layout, cyc.n, store_coords=True)
        tak.set_state(**cyc.as_dict())
        sort_in_place(cyc, 32, cycle_threshold=10 ** 9)  # force cycles
        sort_in_place(tak, 32, cycle_threshold=0)  # force np.take
        for k in cyc.as_dict():
            np.testing.assert_array_equal(
                np.asarray(getattr(cyc, k)), np.asarray(getattr(tak, k)),
                err_msg=k,
            )

    def test_custom_perm_fn_is_routed(self, layout, rng):
        # the stepper passes the backend's counting sort through
        # perm_fn; any stable-sort implementation must be accepted
        calls = []

        def perm_fn(keys, ncells):
            calls.append(ncells)
            return counting_sort_permutation_reference(keys, ncells)

        s = self._storage(layout, rng)
        out = sort_out_of_place(s, 32, perm_fn=perm_fn)
        sort_in_place(out, 32, perm_fn=perm_fn)
        assert calls == [32, 32]
        assert np.all(np.diff(np.asarray(out.icell)) >= 0)


class TestScipylessFallback:
    def test_matches_scipy_path(self, rng, monkeypatch):
        import repro.particles.sorting as sorting

        keys = rng.integers(0, 48, 700)
        with_scipy = counting_sort_permutation(keys, 48)
        monkeypatch.setattr(sorting, "_sparse", None)
        without = sorting.counting_sort_permutation(keys, 48)
        np.testing.assert_array_equal(without, with_scipy)
