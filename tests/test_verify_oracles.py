"""Tests for the physics acceptance oracles (repro.verify.oracles).

The quantitative pass/fail assertions run the real calibrated oracle
profiles on the numpy backend — the same code paths the ``repro verify
--oracles`` CLI executes — plus structural checks on the result type
and on the CLI plumbing.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.verify.oracles import (
    THEORY_LANDAU_RATE,
    THEORY_TWO_STREAM_RATE,
    OracleResult,
    landau_damping_oracle,
    momentum_oracle,
    run_all_oracles,
    two_stream_oracle,
)

ROOT = Path(__file__).resolve().parents[1]


class TestOracleResult:
    def test_describe_reports_status(self):
        ok = OracleResult("x", "numpy", 1.0, 1.0, 0.1, passed=True)
        bad = OracleResult("x", "numpy", 9.0, 1.0, 0.1, passed=False,
                           detail="way off")
        assert ok.describe().startswith("PASS")
        assert bad.describe().startswith("FAIL")
        assert "way off" in bad.describe()

    def test_theory_constants(self):
        # k=0.5, vth=1 Landau rate and the cold-beam gamma_max
        assert THEORY_LANDAU_RATE == pytest.approx(-0.1533)
        assert THEORY_TWO_STREAM_RATE == pytest.approx(0.35355, rel=1e-4)


class TestOraclesOnNumpy:
    @pytest.mark.slow
    def test_landau_damping_oracle_passes(self):
        result = landau_damping_oracle("numpy")
        assert result.passed, result.describe()
        # the measured rate must actually be damping, not just in-band
        assert result.measured < -0.1

    @pytest.mark.slow
    def test_two_stream_oracle_passes(self):
        result = two_stream_oracle("numpy")
        assert result.passed, result.describe()
        assert result.measured > 0.2
        assert "amplified" in result.detail

    def test_momentum_oracle_passes(self):
        result = momentum_oracle("numpy")
        assert result.passed, result.describe()

    @pytest.mark.verify_full
    def test_full_battery_passes(self):
        results = run_all_oracles("numpy", include_3d=True)
        assert len(results) == 5
        assert all(r.passed for r in results), "\n".join(
            r.describe() for r in results if not r.passed
        )


class TestVerifyCLI:
    def test_verify_subcommand_passes(self):
        """Acceptance criterion: `repro verify --seed 0 --samples 2`
        reports zero divergences (small sample for tier-1 speed; the
        full --samples 16 sweep runs under `make verify-full`)."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "verify",
             "--seed", "0", "--samples", "2", "--no-mp"],
            capture_output=True, text=True,
            cwd=ROOT, env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "verify: PASS" in proc.stdout

    def test_verify_golden_flag(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "verify",
             "--samples", "0", "--golden",
             "--golden-dir", str(ROOT / "golden")],
            capture_output=True, text=True,
            cwd=ROOT, env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "golden" in proc.stdout
