"""Cache-simulator tests: LRU semantics, hierarchy, prefetcher model."""

import numpy as np
import pytest

from repro.perf.cache import CacheHierarchy, CacheLevel, CacheSimResult
from repro.perf.machine import CacheLevelSpec, MachineSpec


def level(capacity=256, line=64, assoc=2, name="L1"):
    return CacheLevel(CacheLevelSpec(name, capacity, line, assoc, 10.0))


class TestCacheLevel:
    def test_cold_miss_then_hit(self):
        lv = level()
        assert lv.access(5) is False
        assert lv.access(5) is True
        assert lv.misses == 1 and lv.accesses == 2

    def test_lru_eviction_within_set(self):
        # assoc=2: third distinct line in one set evicts the LRU one
        lv = level(capacity=256, assoc=2)  # 2 sets
        nsets = lv.n_sets
        a, b, c = 0, nsets, 2 * nsets  # same set index
        lv.access(a)
        lv.access(b)
        lv.access(c)  # evicts a
        assert lv.contains(b) and lv.contains(c)
        assert not lv.contains(a)

    def test_mru_protected(self):
        lv = level(capacity=256, assoc=2)
        nsets = lv.n_sets
        a, b, c = 0, nsets, 2 * nsets
        lv.access(a)
        lv.access(b)
        lv.access(a)  # a becomes MRU
        lv.access(c)  # evicts b
        assert lv.contains(a) and not lv.contains(b)

    def test_different_sets_independent(self):
        lv = level(capacity=256, assoc=2)
        lv.access(0)
        lv.access(1)  # different set
        assert lv.contains(0) and lv.contains(1)

    def test_flush(self):
        lv = level()
        lv.access(3)
        lv.flush()
        assert not lv.contains(3)
        assert lv.accesses == 0

    def test_install_no_count(self):
        lv = level()
        lv.install(9)
        assert lv.contains(9)
        assert lv.accesses == 0 and lv.misses == 0

    def test_miss_ratio(self):
        lv = level()
        assert lv.miss_ratio == 0.0
        lv.access(1)
        lv.access(1)
        assert lv.miss_ratio == pytest.approx(0.5)


class TestCacheSimResult:
    def test_add(self):
        a = CacheSimResult(("L1",), (10,), (3,))
        b = CacheSimResult(("L1",), (5,), (2,))
        c = a + b
        assert c.accesses == (15,) and c.misses == (5,)

    def test_add_mismatched_raises(self):
        a = CacheSimResult(("L1",), (1,), (1,))
        b = CacheSimResult(("L2",), (1,), (1,))
        with pytest.raises(ValueError):
            a + b

    def test_misses_by_name(self):
        r = CacheSimResult(("L1", "L2"), (10, 4), (4, 2))
        assert r.misses_by_name() == {"L1": 4, "L2": 2}


def two_level(prefetch=False, **kw):
    return CacheHierarchy(
        (
            CacheLevelSpec("L1", 512, 64, 2, 10.0),
            CacheLevelSpec("L2", 4096, 64, 4, 25.0),
        ),
        prefetch=prefetch,
        **kw,
    )


class TestHierarchyNoPrefetch:
    def test_inclusive_walk(self):
        h = two_level()
        r = h.simulate(np.array([0, 0, 64 * 100, 0]))
        assert r.misses_by_name()["L1"] == 2
        # the repeated 0 hit L1 the 2nd and 4th time... (4th: 0 still in L1)
        assert r.accesses[0] == 4
        assert r.accesses[1] == 2  # only L1 misses reach L2

    def test_l2_absorbs_l1_evictions(self):
        h = two_level()
        # cycle 3 lines through one L1 set (assoc 2) - L2 (assoc 4) holds all
        nsets = h.levels[0].n_sets
        lines = np.array([0, nsets, 2 * nsets] * 10) * 64
        r = h.simulate(lines)
        assert r.misses_by_name()["L2"] == 3  # compulsory only

    def test_warm_state_across_calls(self):
        h = two_level()
        h.simulate(np.array([0]))
        r2 = h.simulate(np.array([0]))
        assert r2.misses_by_name()["L1"] == 0

    def test_flush_cold_restart(self):
        h = two_level()
        h.simulate(np.array([0]))
        h.flush()
        r = h.simulate(np.array([0]))
        assert r.misses_by_name()["L1"] == 1

    def test_per_call_counters_isolated(self):
        h = two_level()
        # 8 lines exactly fill the 4x2 L1: the second pass is all hits
        r1 = h.simulate(np.arange(8) * 64)
        r2 = h.simulate(np.arange(8) * 64)
        assert r1.misses_by_name()["L1"] == 8
        assert r2.misses_by_name()["L1"] == 0

    def test_monotone_in_cache_size(self, rng):
        """Fundamental sanity: a larger L1 never misses more (same assoc
        ratio, LRU inclusion property holds per set count scaling)."""
        addrs = rng.integers(0, 1 << 14, 5000) * 8
        small = CacheHierarchy((CacheLevelSpec("L1", 512, 64, 8, 1.0),), prefetch=False)
        big = CacheHierarchy((CacheLevelSpec("L1", 4096, 64, 8, 1.0),), prefetch=False)
        ms = small.simulate(addrs).misses_by_name()["L1"]
        mb = big.simulate(addrs).misses_by_name()["L1"]
        assert mb <= ms

    def test_simulate_series(self):
        h = two_level()
        results = h.simulate_series([np.array([0]), np.array([0]), np.array([64])])
        assert [r.misses_by_name()["L1"] for r in results] == [1, 0, 1]

    def test_sub_line_addresses_share_line(self):
        h = two_level()
        r = h.simulate(np.array([0, 8, 16, 56]))
        assert r.misses_by_name()["L1"] == 1

    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy(())


class TestPrefetcher:
    def test_stream_absorbed_at_l2(self):
        h = two_level(prefetch=True)
        # long sequential stream: L1 still misses per line, L2 misses
        # only during stream establishment
        addrs = np.arange(512) * 64
        r = h.simulate(addrs)
        assert r.misses_by_name()["L1"] == 512
        assert r.misses_by_name()["L2"] < 20

    def test_no_prefetch_l2_misses_stream(self):
        h = two_level(prefetch=False)
        addrs = np.arange(512) * 64
        r = h.simulate(addrs)
        assert r.misses_by_name()["L2"] == 512

    def test_random_unaffected_by_prefetcher(self, rng):
        addrs = rng.integers(0, 1 << 16, 2000) * 64
        r1 = two_level(prefetch=True, prefetch_contention=0).simulate(addrs)
        r2 = two_level(prefetch=False).simulate(addrs)
        # random traffic establishes (almost) no streams
        assert abs(r1.misses_by_name()["L2"] - r2.misses_by_name()["L2"]) < 50

    def test_prefetched_lines_installed(self):
        h = two_level(prefetch=True)
        addrs = np.arange(64) * 64
        h.simulate(addrs)
        # a recent stream line is resident in L2 without being demanded
        assert h.levels[1].contains(60)

    def test_contention_drops_streams(self, rng):
        """Irregular traffic interleaved with a stream must produce more
        stream demand misses when the contention model is on."""
        stream = np.arange(2048) * 64
        noise = rng.integers(1 << 20, 1 << 24, 2048) * 64
        inter = np.column_stack([stream, noise]).ravel()
        with_c = two_level(prefetch=True, prefetch_contention=2).simulate(inter)
        without = two_level(prefetch=True, prefetch_contention=0).simulate(inter)
        assert (
            with_c.misses_by_name()["L2"] > without.misses_by_name()["L2"] + 100
        )

    def test_flush_clears_streams(self):
        h = two_level(prefetch=True)
        h.simulate(np.arange(64) * 64)
        h.flush()
        r = h.simulate(np.arange(64, 128) * 64)
        # stream must re-establish: first lines miss L2
        assert r.misses_by_name()["L2"] >= 2

    def test_machine_spec_constructor(self):
        h = CacheHierarchy(MachineSpec.tiny_test())
        assert h.level_names == ("L1", "L2")
