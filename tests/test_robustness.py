"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.core import OptimizationConfig, PICStepper, Simulation
from repro.core.kernels import (
    accumulate_redundant,
    accumulate_standard,
    interpolate_redundant,
    push_positions_bitwise,
)
from repro.curves import get_ordering
from repro.grid import GridSpec, RedundantFields
from repro.particles import LandauDamping, make_storage
from repro.particles.sorting import sort_in_place, sort_out_of_place


class TestEmptyAndTiny:
    def test_kernels_accept_empty_populations(self):
        o = get_ordering("morton", 8, 8)
        rho = np.zeros((o.ncells_allocated, 4))
        empty_i = np.array([], dtype=np.int64)
        empty_f = np.array([])
        accumulate_redundant(rho, empty_i, empty_f, empty_f)
        assert rho.sum() == 0
        ex, ey = interpolate_redundant(np.zeros((64, 8)), empty_i, empty_f, empty_f)
        assert len(ex) == 0

    def test_standard_accumulate_empty(self):
        rho = np.zeros((8, 8))
        accumulate_standard(rho, np.array([], dtype=int), np.array([], dtype=int),
                            np.array([]), np.array([]))
        assert rho.sum() == 0

    def test_push_empty_storage(self):
        o = get_ordering("morton", 8, 8)
        s = make_storage("soa", 0, store_coords=True)
        push_positions_bitwise(s, 8, 8, o)  # must not raise
        assert s.n == 0

    def test_sort_empty_and_single(self):
        for n in (0, 1):
            s = make_storage("soa", n, store_coords=False)
            if n:
                s.set_state(np.array([3]), np.array([0.5]), np.array([0.5]),
                            np.array([1.0]), np.array([0.0]))
            out = sort_out_of_place(s, 64)
            assert out.n == n
            sort_in_place(s, 64)

    def test_single_particle_simulation(self):
        grid = GridSpec(8, 8, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        sim = Simulation(
            grid, LandauDamping(alpha=0.0), 1,
            OptimizationConfig.fully_optimized(), dt=0.1, quiet=True, seed=None,
        )
        sim.run(10)
        # a single particle with a neutralizing background: E ~ self-field
        assert np.isfinite(sim.history.total_energy).all()


class TestExtremeMotion:
    def test_multi_box_crossings_per_step(self, rng):
        """Particles crossing many periods per step stay consistent —
        the general case §IV-C insists on handling (contrast with the
        move-at-most-one-cell tricks the paper rejects)."""
        o = get_ordering("morton", 16, 16)
        n = 500
        s = make_storage("soa", n, store_coords=True)
        ix = rng.integers(0, 16, n)
        iy = rng.integers(0, 16, n)
        s.set_state(o.encode(ix, iy), rng.random(n), rng.random(n),
                    rng.normal(0, 300, n), rng.normal(0, 300, n), ix, iy)
        push_positions_bitwise(s, 16, 16, o)
        assert np.asarray(s.ix).min() >= 0 and np.asarray(s.ix).max() < 16
        assert np.asarray(s.dx).min() >= 0 and np.asarray(s.dx).max() <= 1.0

    def test_large_dt_remains_stable_numerically(self):
        """A CFL-violating dt gives bad physics but must not corrupt
        the data structures (finite values, valid indices)."""
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        st = PICStepper(
            grid, OptimizationConfig.fully_optimized(),
            case=LandauDamping(alpha=0.3), n_particles=2000,
            dt=5.0, quiet=True, seed=None,
        )
        st.run(10)
        assert np.isfinite(np.asarray(st.particles.dx)).all()
        assert np.isfinite(st.ex_grid).all()
        icell = np.asarray(st.particles.icell)
        assert icell.min() >= 0 and icell.max() < st.ordering.ncells_allocated

    def test_zero_dt_freezes_positions(self):
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        st = PICStepper(
            grid, OptimizationConfig.fully_optimized().with_(hoisting=False),
            case=LandauDamping(alpha=0.1), n_particles=1000,
            dt=0.0, quiet=True, seed=None,
        )
        before = np.asarray(st.particles.dx).copy()
        st.run(3)
        np.testing.assert_array_equal(np.asarray(st.particles.dx), before)


class TestConservationUnderStress:
    @pytest.mark.parametrize("ordering", ["row-major", "morton"])
    def test_charge_conserved_with_fast_particles(self, rng, ordering):
        o = get_ordering(ordering, 16, 16)
        fields_grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        fields = RedundantFields(fields_grid, o)
        n = 3000
        s = make_storage("soa", n, store_coords=(ordering != "row-major"))
        ix = rng.integers(0, 16, n)
        iy = rng.integers(0, 16, n)
        if s.store_coords:
            s.set_state(o.encode(ix, iy), rng.random(n), rng.random(n),
                        rng.normal(0, 40, n), rng.normal(0, 40, n), ix, iy)
        else:
            s.set_state(o.encode(ix, iy), rng.random(n), rng.random(n),
                        rng.normal(0, 40, n), rng.normal(0, 40, n))
        for _ in range(5):
            push_positions_bitwise(s, 16, 16, o)
            fields.reset_rho()
            accumulate_redundant(fields.rho_1d, s.icell, s.dx, s.dy, 1.0)
            assert fields.rho_1d.sum() == pytest.approx(n, rel=1e-12)

    def test_all_particles_in_one_cell(self):
        """Pathological clustering (every particle in cell 0)."""
        o = get_ordering("morton", 8, 8)
        n = 1000
        rho = np.zeros((o.ncells_allocated, 4))
        accumulate_redundant(
            rho, np.zeros(n, dtype=np.int64),
            np.full(n, 0.25), np.full(n, 0.75), 1.0,
        )
        assert rho.sum() == pytest.approx(n)
        assert np.count_nonzero(rho.sum(axis=1)) == 1


class TestSolverRobustness:
    def test_poisson_with_delta_rho(self, rng):
        from repro.grid import SpectralPoissonSolver

        g = GridSpec(32, 32, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
        rho = np.zeros((32, 32))
        rho[5, 7] = 1000.0
        phi, ex, ey = SpectralPoissonSolver(g).solve(rho)
        assert np.isfinite(phi).all() and np.isfinite(ex).all()
        # the field points away from the positive charge nearby
        assert ex[6, 7] > 0 and ex[4, 7] < 0

    def test_poisson_extreme_magnitudes(self):
        from repro.grid import SpectralPoissonSolver

        g = GridSpec(16, 16)
        rho = np.full((16, 16), 1e12)
        rho[0, 0] += 1e12
        phi, *_ = SpectralPoissonSolver(g).solve(rho)
        assert np.isfinite(phi).all()


class TestHybridComposition:
    def test_mpi_ranks_with_thread_partitioned_deposit(self, rng):
        """The full hybrid stack composed: each simulated MPI rank
        deposits through the simulated-OpenMP private-copy reduction,
        then the ranks allreduce — the total must equal one serial
        deposit of the union."""
        from repro.core.kernels import accumulate_redundant as serial_acc
        from repro.parallel.mpi import SimMPI
        from repro.parallel.openmp import parallel_accumulate_redundant

        o = get_ordering("morton", 16, 16)
        n = 4000
        ix = rng.integers(0, 16, n)
        iy = rng.integers(0, 16, n)
        dx = rng.random(n)
        dy = rng.random(n)
        icell = o.encode(ix, iy)

        serial = np.zeros((o.ncells_allocated, 4))
        serial_acc(serial, icell, dx, dy, 0.5)

        nranks, nthreads = 4, 3
        bounds = np.linspace(0, n, nranks + 1).astype(int)

        def rank_fn(comm):
            sl = slice(bounds[comm.rank], bounds[comm.rank + 1])
            local = np.zeros((o.ncells_allocated, 4))
            parallel_accumulate_redundant(
                local, icell[sl], dx[sl], dy[sl], 0.5, nthreads
            )
            return comm.allreduce(local)

        results = SimMPI(nranks).run(rank_fn)
        for r in results:
            np.testing.assert_allclose(r, serial, atol=1e-12)


# ----------------------------------------------------------------------
# Resilience layer: guards, fault injection, supervised runs
# ----------------------------------------------------------------------
import os

from repro.grid import GridSpec as _GridSpec  # noqa: E402 (section-local)
from repro.resilience import (
    FaultInjector,
    GuardSuite,
    InjectedKernelError,
    SupervisedRun,
    SupervisionError,
    truncate_file,
)


def _landau_sim(backend="numpy", n=2000, **cfg_kw):
    grid = _GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
    cfg = OptimizationConfig.fully_optimized().with_(backend=backend, **cfg_kw)
    return Simulation(grid, LandauDamping(alpha=0.05), n, cfg, dt=0.05, seed=7)


def _clean_history(n_steps):
    with _landau_sim() as sim:
        sim.run(n_steps)
        return sim.history


class TestGuards:
    def test_clean_run_passes_default_suite(self):
        suite = GuardSuite.default()
        with _landau_sim() as sim:
            sim.run(3)
            assert suite.check_now(sim.stepper, sim.history, 3) == []

    def test_finite_guard_flags_nan(self):
        suite = GuardSuite.from_spec("finite")
        with _landau_sim() as sim:
            np.asarray(sim.particles.vx)[5] = np.nan
            (v,) = suite.check_now(sim.stepper, sim.history, 1)
            assert v.guard == "finite" and "vx" in v.message

    def test_cells_guard_flags_out_of_range(self):
        suite = GuardSuite.from_spec("cells")
        with _landau_sim() as sim:
            np.asarray(sim.particles.icell)[0] = (
                sim.stepper.ordering.ncells_allocated + 5
            )
            (v,) = suite.check_now(sim.stepper, sim.history, 1)
            assert v.guard == "cells" and v.value == 1

    def test_charge_guard_flags_lost_deposit(self):
        suite = GuardSuite.from_spec("charge:1e-8")
        with _landau_sim() as sim:
            sim.stepper.rho_grid *= 0.5
            (v,) = suite.check_now(sim.stepper, sim.history, 1)
            assert v.guard == "charge" and v.value > v.threshold

    def test_spec_parsing(self):
        assert GuardSuite.from_spec("none").guards == []
        assert GuardSuite.from_spec("default").names == (
            "finite", "cells", "charge",
        )
        assert "energy" in GuardSuite.from_spec("all").names
        suite = GuardSuite.from_spec("charge:1e-4,energy:0.5")
        assert suite.guards[0].tol == 1e-4
        assert suite.guards[1].ceiling == 0.5
        with pytest.raises(ValueError, match="unknown guard"):
            GuardSuite.from_spec("entropy")
        with pytest.raises(ValueError, match="no parameter"):
            GuardSuite.from_spec("finite:3")

    def test_guard_cycle_skips_off_steps(self):
        suite = GuardSuite.from_spec("finite", every=5)
        with _landau_sim() as sim:
            np.asarray(sim.particles.vx)[0] = np.inf
            assert suite.check(sim.stepper, sim.history, 3) == []
            assert len(suite.check(sim.stepper, sim.history, 5)) == 1


class TestFaultInjector:
    def test_nan_poison_is_deterministic(self):
        masks = []
        for _ in range(2):
            with _landau_sim() as sim:
                FaultInjector(seed=42).add_nan(step=0, array="vx", count=6) \
                    .before_step(sim.stepper, 0)
                masks.append(np.isnan(np.asarray(sim.particles.vx)).copy())
        assert masks[0].sum() == 6
        np.testing.assert_array_equal(masks[0], masks[1])

    def test_kernel_trap_raises_and_delegates(self):
        inj = FaultInjector().add_kernel_raise(
            step=2, kernel="update_velocities", once=True,
        )
        with _landau_sim() as sim:
            real = sim.stepper.backend
            inj.before_step(sim.stepper, 0)  # before the armed step
            assert sim.stepper.backend is real
            inj.before_step(sim.stepper, 2)
            assert sim.stepper.backend is not real
            assert sim.stepper.backend.name == real.name  # delegation
            with pytest.raises(InjectedKernelError):
                sim.stepper.backend.update_velocities(None, None, None, None)
            # once=True: the next before_step removes the spent trap
            inj.before_step(sim.stepper, 3)
            assert sim.stepper.backend is real

    def test_truncate_file(self, tmp_path):
        p = tmp_path / "blob.bin"
        p.write_bytes(b"x" * 1000)
        assert truncate_file(p, fraction=0.5) == 500
        assert p.stat().st_size == 500


class TestSupervisedRun:
    def test_nan_fault_rolls_back_and_recovers(self):
        clean = _clean_history(20)
        inj = FaultInjector(seed=3).add_nan(step=12, array="vx", count=5)
        with SupervisedRun(
            _landau_sim(), checkpoint_every=5, injector=inj,
        ) as sup:
            h = sup.run(20)
            assert sup.sim.stepper.iteration == 20
            assert sup.report.rollbacks >= 1
            assert sup.report.recoveries == len(sup.report.failures) >= 1
            assert sup.report.failures[0]["error"] == "GuardTrippedError"
            # the rolled-back steps re-run bit-identically
            assert h.field_energy == clean.field_energy
            assert h.kinetic_energy == clean.kinetic_energy

    def test_no_fault_supervised_is_bitwise_identical(self):
        clean = _clean_history(15)
        with SupervisedRun(_landau_sim(), checkpoint_every=4) as sup:
            h = sup.run(15)
            assert sup.report.rollbacks == 0 and not sup.report.failures
            assert h.times == clean.times
            assert h.field_energy == clean.field_energy
            assert h.kinetic_energy == clean.kinetic_energy
            assert h.mode_amplitude == clean.mode_amplitude

    def test_persistent_fault_exhausts_retries_and_raises(self):
        # numpy is the end of the degradation chain, so a fault that
        # never clears must surface as SupervisionError, with the
        # report attached
        inj = FaultInjector().add_kernel_raise(step=2, once=False)
        with SupervisedRun(
            _landau_sim(), checkpoint_every=2, max_retries=2, injector=inj,
        ) as sup:
            with pytest.raises(SupervisionError) as ei:
                sup.run(10)
            assert ei.value.report is sup.report
            assert len(sup.report.failures) > 2

    def test_torn_checkpoint_is_discarded_during_rollback(self, tmp_path):
        clean = _clean_history(10)
        inj = FaultInjector(seed=1).add_nan(step=5, count=3)
        with SupervisedRun(
            _landau_sim(), checkpoint_dir=tmp_path, checkpoint_every=2,
            keep_checkpoints=5, injector=inj,
        ) as sup:
            sup.run(5)  # checkpoints at 0, 2, 4
            truncate_file(tmp_path / "ckpt-00000004.npz", fraction=0.3)
            sup.run(5)  # NaN at 5 -> rollback skips the torn archive
            assert sup.report.checkpoints_discarded >= 1
            assert sup.report.rollbacks >= 1
            assert sup.sim.stepper.iteration == 10
            assert sup.sim.history.field_energy == clean.field_energy
        # user-supplied rotation dir survives close; no temp litter
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob("ckpt-*.npz"))

    def test_rotation_keeps_newest_k(self, tmp_path):
        with SupervisedRun(
            _landau_sim(), checkpoint_dir=tmp_path, checkpoint_every=2,
            keep_checkpoints=2,
        ) as sup:
            sup.run(10)
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert names == ["ckpt-00000006.npz", "ckpt-00000008.npz"]

    def test_degrades_numpy_mp_to_numpy(self):
        clean = _clean_history(12)
        inj = FaultInjector().add_kernel_raise(
            step=4, kernel="update_velocities", backend="numpy-mp",
        )
        sim = _landau_sim("numpy-mp", workers=2)
        segs = list(sim.stepper.backend.engine_for(sim.stepper).arena.segment_names)
        with SupervisedRun(
            sim, checkpoint_every=3, max_retries=1, injector=inj,
        ) as sup:
            h = sup.run(12)
            assert sup.report.degradations == [
                {"step": 4, "from": "numpy-mp", "to": "numpy"}
            ]
            assert sup.backend_name == "numpy"
            assert sim.stepper.backend.name == "numpy"
            assert h.field_energy == clean.field_energy
        if os.path.isdir("/dev/shm"):
            left = [s for s in segs if os.path.exists("/dev/shm/" + s)]
            assert left == [], f"leaked shared-memory segments: {left}"

    def test_report_published_into_timings_json(self):
        import json

        inj = FaultInjector(seed=2).add_nan(step=3)
        with SupervisedRun(
            _landau_sim(), checkpoint_every=2, injector=inj,
        ) as sup:
            sup.run(6)
            rec = json.loads(sup.timings_json())
            assert rec["supervisor"]["rollbacks"] == sup.report.rollbacks >= 1
            assert rec["cumulative"]["rollbacks"] >= 1


class TestCloseIdempotency:
    @pytest.mark.parametrize("backend", ["numpy", "numpy-mp"])
    def test_close_is_idempotent_on_exception_paths(self, backend):
        kw = {"workers": 2} if backend == "numpy-mp" else {}
        sim = _landau_sim(backend, **kw)
        segs = []
        if backend == "numpy-mp":
            segs = list(
                sim.stepper.backend.engine_for(sim.stepper).arena.segment_names
            )
        with pytest.raises(RuntimeError, match="boom"):
            with sim:
                sim.run(2)
                raise RuntimeError("boom")
        sim.close()  # second close: no-op, no raise
        sim.close()
        if segs and os.path.isdir("/dev/shm"):
            left = [s for s in segs if os.path.exists("/dev/shm/" + s)]
            assert left == [], f"leaked shared-memory segments: {left}"

    def test_supervisor_close_is_idempotent(self, tmp_path):
        sup = SupervisedRun(_landau_sim(), checkpoint_every=3)
        sup.run(3)
        tmp_rotation = sup.rotation.directory
        sup.close()
        sup.close()
        assert not tmp_rotation.exists()  # private temp dir removed
