"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.core import OptimizationConfig, PICStepper, Simulation
from repro.core.kernels import (
    accumulate_redundant,
    accumulate_standard,
    interpolate_redundant,
    push_positions_bitwise,
)
from repro.curves import get_ordering
from repro.grid import GridSpec, RedundantFields
from repro.particles import LandauDamping, make_storage
from repro.particles.sorting import sort_in_place, sort_out_of_place


class TestEmptyAndTiny:
    def test_kernels_accept_empty_populations(self):
        o = get_ordering("morton", 8, 8)
        rho = np.zeros((o.ncells_allocated, 4))
        empty_i = np.array([], dtype=np.int64)
        empty_f = np.array([])
        accumulate_redundant(rho, empty_i, empty_f, empty_f)
        assert rho.sum() == 0
        ex, ey = interpolate_redundant(np.zeros((64, 8)), empty_i, empty_f, empty_f)
        assert len(ex) == 0

    def test_standard_accumulate_empty(self):
        rho = np.zeros((8, 8))
        accumulate_standard(rho, np.array([], dtype=int), np.array([], dtype=int),
                            np.array([]), np.array([]))
        assert rho.sum() == 0

    def test_push_empty_storage(self):
        o = get_ordering("morton", 8, 8)
        s = make_storage("soa", 0, store_coords=True)
        push_positions_bitwise(s, 8, 8, o)  # must not raise
        assert s.n == 0

    def test_sort_empty_and_single(self):
        for n in (0, 1):
            s = make_storage("soa", n, store_coords=False)
            if n:
                s.set_state(np.array([3]), np.array([0.5]), np.array([0.5]),
                            np.array([1.0]), np.array([0.0]))
            out = sort_out_of_place(s, 64)
            assert out.n == n
            sort_in_place(s, 64)

    def test_single_particle_simulation(self):
        grid = GridSpec(8, 8, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        sim = Simulation(
            grid, LandauDamping(alpha=0.0), 1,
            OptimizationConfig.fully_optimized(), dt=0.1, quiet=True, seed=None,
        )
        sim.run(10)
        # a single particle with a neutralizing background: E ~ self-field
        assert np.isfinite(sim.history.total_energy).all()


class TestExtremeMotion:
    def test_multi_box_crossings_per_step(self, rng):
        """Particles crossing many periods per step stay consistent —
        the general case §IV-C insists on handling (contrast with the
        move-at-most-one-cell tricks the paper rejects)."""
        o = get_ordering("morton", 16, 16)
        n = 500
        s = make_storage("soa", n, store_coords=True)
        ix = rng.integers(0, 16, n)
        iy = rng.integers(0, 16, n)
        s.set_state(o.encode(ix, iy), rng.random(n), rng.random(n),
                    rng.normal(0, 300, n), rng.normal(0, 300, n), ix, iy)
        push_positions_bitwise(s, 16, 16, o)
        assert np.asarray(s.ix).min() >= 0 and np.asarray(s.ix).max() < 16
        assert np.asarray(s.dx).min() >= 0 and np.asarray(s.dx).max() <= 1.0

    def test_large_dt_remains_stable_numerically(self):
        """A CFL-violating dt gives bad physics but must not corrupt
        the data structures (finite values, valid indices)."""
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        st = PICStepper(
            grid, OptimizationConfig.fully_optimized(),
            case=LandauDamping(alpha=0.3), n_particles=2000,
            dt=5.0, quiet=True, seed=None,
        )
        st.run(10)
        assert np.isfinite(np.asarray(st.particles.dx)).all()
        assert np.isfinite(st.ex_grid).all()
        icell = np.asarray(st.particles.icell)
        assert icell.min() >= 0 and icell.max() < st.ordering.ncells_allocated

    def test_zero_dt_freezes_positions(self):
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        st = PICStepper(
            grid, OptimizationConfig.fully_optimized().with_(hoisting=False),
            case=LandauDamping(alpha=0.1), n_particles=1000,
            dt=0.0, quiet=True, seed=None,
        )
        before = np.asarray(st.particles.dx).copy()
        st.run(3)
        np.testing.assert_array_equal(np.asarray(st.particles.dx), before)


class TestConservationUnderStress:
    @pytest.mark.parametrize("ordering", ["row-major", "morton"])
    def test_charge_conserved_with_fast_particles(self, rng, ordering):
        o = get_ordering(ordering, 16, 16)
        fields_grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        fields = RedundantFields(fields_grid, o)
        n = 3000
        s = make_storage("soa", n, store_coords=(ordering != "row-major"))
        ix = rng.integers(0, 16, n)
        iy = rng.integers(0, 16, n)
        if s.store_coords:
            s.set_state(o.encode(ix, iy), rng.random(n), rng.random(n),
                        rng.normal(0, 40, n), rng.normal(0, 40, n), ix, iy)
        else:
            s.set_state(o.encode(ix, iy), rng.random(n), rng.random(n),
                        rng.normal(0, 40, n), rng.normal(0, 40, n))
        for _ in range(5):
            push_positions_bitwise(s, 16, 16, o)
            fields.reset_rho()
            accumulate_redundant(fields.rho_1d, s.icell, s.dx, s.dy, 1.0)
            assert fields.rho_1d.sum() == pytest.approx(n, rel=1e-12)

    def test_all_particles_in_one_cell(self):
        """Pathological clustering (every particle in cell 0)."""
        o = get_ordering("morton", 8, 8)
        n = 1000
        rho = np.zeros((o.ncells_allocated, 4))
        accumulate_redundant(
            rho, np.zeros(n, dtype=np.int64),
            np.full(n, 0.25), np.full(n, 0.75), 1.0,
        )
        assert rho.sum() == pytest.approx(n)
        assert np.count_nonzero(rho.sum(axis=1)) == 1


class TestSolverRobustness:
    def test_poisson_with_delta_rho(self, rng):
        from repro.grid import SpectralPoissonSolver

        g = GridSpec(32, 32, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
        rho = np.zeros((32, 32))
        rho[5, 7] = 1000.0
        phi, ex, ey = SpectralPoissonSolver(g).solve(rho)
        assert np.isfinite(phi).all() and np.isfinite(ex).all()
        # the field points away from the positive charge nearby
        assert ex[6, 7] > 0 and ex[4, 7] < 0

    def test_poisson_extreme_magnitudes(self):
        from repro.grid import SpectralPoissonSolver

        g = GridSpec(16, 16)
        rho = np.full((16, 16), 1e12)
        rho[0, 0] += 1e12
        phi, *_ = SpectralPoissonSolver(g).solve(rho)
        assert np.isfinite(phi).all()


class TestHybridComposition:
    def test_mpi_ranks_with_thread_partitioned_deposit(self, rng):
        """The full hybrid stack composed: each simulated MPI rank
        deposits through the simulated-OpenMP private-copy reduction,
        then the ranks allreduce — the total must equal one serial
        deposit of the union."""
        from repro.core.kernels import accumulate_redundant as serial_acc
        from repro.parallel.mpi import SimMPI
        from repro.parallel.openmp import parallel_accumulate_redundant

        o = get_ordering("morton", 16, 16)
        n = 4000
        ix = rng.integers(0, 16, n)
        iy = rng.integers(0, 16, n)
        dx = rng.random(n)
        dy = rng.random(n)
        icell = o.encode(ix, iy)

        serial = np.zeros((o.ncells_allocated, 4))
        serial_acc(serial, icell, dx, dy, 0.5)

        nranks, nthreads = 4, 3
        bounds = np.linspace(0, n, nranks + 1).astype(int)

        def rank_fn(comm):
            sl = slice(bounds[comm.rank], bounds[comm.rank + 1])
            local = np.zeros((o.ncells_allocated, 4))
            parallel_accumulate_redundant(
                local, icell[sl], dx[sl], dy[sl], 0.5, nthreads
            )
            return comm.allreduce(local)

        results = SimMPI(nranks).run(rank_fn)
        for r in results:
            np.testing.assert_allclose(r, serial, atol=1e-12)
