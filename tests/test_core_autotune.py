"""Tests for the sort-period autotuner (§IV-E future work)."""

import pytest

from repro.core import OptimizationConfig
from repro.core.autotune import (
    SortPeriodAutoTuner,
    TuneResult,
    tune_sort_period_model,
)
from repro.perf.costmodel import LoopCostModel, LoopKind
from repro.perf.machine import MachineSpec

BASE_MISSES = {
    LoopKind.UPDATE_V: {"L2": 0.10, "L3": 0.03},
    LoopKind.UPDATE_X: {},
    LoopKind.ACCUMULATE: {"L2": 0.06, "L3": 0.02},
}


class TestModelTuner:
    @pytest.fixture
    def model(self):
        return LoopCostModel(MachineSpec.haswell())

    @pytest.fixture
    def config(self):
        return OptimizationConfig.fully_optimized()

    def test_finds_interior_optimum(self, model, config):
        res = tune_sort_period_model(model, config, 1_000_000, BASE_MISSES)
        assert res.best_period in res.costs
        # an interior optimum: both extremes cost more
        periods = sorted(res.costs)
        assert res.costs[res.best_period] <= res.costs[periods[0]]
        assert res.costs[res.best_period] <= res.costs[periods[-1]]

    def test_costlier_misses_mean_sorting_more_often(self, model, config):
        """The paper's observation: Haswell (sort every 20) vs Sandy
        Bridge (every 50) — pricier stalls shift the optimum down."""
        cheap = tune_sort_period_model(
            model, config, 1_000_000, BASE_MISSES, miss_growth_per_iter=0.01
        )
        pricey = tune_sort_period_model(
            model, config, 1_000_000, BASE_MISSES, miss_growth_per_iter=0.5
        )
        assert pricey.best_period <= cheap.best_period

    def test_zero_growth_never_sorts(self, model, config):
        res = tune_sort_period_model(
            model, config, 1_000_000, BASE_MISSES, miss_growth_per_iter=0.0
        )
        # with no disorder penalty the longest period wins
        assert res.best_period == max(res.costs)

    def test_rejects_negative_growth(self, model, config):
        with pytest.raises(ValueError):
            tune_sort_period_model(
                model, config, 1000, BASE_MISSES, miss_growth_per_iter=-0.1
            )

    def test_cost_of_accessor(self, model, config):
        res = tune_sort_period_model(model, config, 1000, BASE_MISSES)
        for p, c in res.costs.items():
            assert res.cost_of(p) == c


class TestOnlineTuner:
    def _cost_fn(self, period):
        # synthetic landscape with minimum at 20
        return 1.0 / period + 0.002 * period

    def test_walks_candidates_then_settles(self):
        tuner = SortPeriodAutoTuner(candidates=(5, 20, 100), trial_iterations=3)
        seen = []
        for _ in range(9):
            p = tuner.period
            seen.append(p)
            tuner.record(self._cost_fn(p))
        assert seen == [5, 5, 5, 20, 20, 20, 100, 100, 100]
        assert tuner.finished
        assert tuner.result().best_period == 20
        # after finishing, period returns the winner
        assert tuner.period == 20

    def test_partial_trial_excluded(self):
        tuner = SortPeriodAutoTuner(candidates=(5, 20), trial_iterations=4)
        for _ in range(4):
            tuner.record(self._cost_fn(5))
        tuner.record(self._cost_fn(20))  # partial second trial
        res = tuner.result()
        assert res.best_period == 5  # only completed trials count

    def test_no_trials_raises(self):
        tuner = SortPeriodAutoTuner()
        with pytest.raises(RuntimeError):
            tuner.result()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SortPeriodAutoTuner(candidates=())
        with pytest.raises(ValueError):
            SortPeriodAutoTuner(trial_iterations=0)

    def test_record_after_finish_is_noop(self):
        tuner = SortPeriodAutoTuner(candidates=(7,), trial_iterations=1)
        tuner.record(1.0)
        assert tuner.finished
        tuner.record(99.0)
        assert tuner.result().costs[7] == 1.0

    def test_result_type(self):
        tuner = SortPeriodAutoTuner(candidates=(3,), trial_iterations=1)
        tuner.record(2.0)
        assert isinstance(tuner.result(), TuneResult)


class TestEndToEndWithModel:
    def test_tuner_against_model_landscape(self):
        """Drive the online tuner with modeled costs: it must find the
        same optimum as the analytic sweep."""
        model = LoopCostModel(MachineSpec.haswell())
        cfg = OptimizationConfig.fully_optimized()
        candidates = (5, 10, 20, 50, 100)
        analytic = tune_sort_period_model(
            model, cfg, 1_000_000, BASE_MISSES,
            miss_growth_per_iter=0.08, candidates=candidates,
        )
        tuner = SortPeriodAutoTuner(candidates=candidates, trial_iterations=2)
        while not tuner.finished:
            tuner.record(analytic.cost_of(tuner.period))
        assert tuner.result().best_period == analytic.best_period
