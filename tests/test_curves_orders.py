"""Per-ordering unit tests: closed forms, layouts, known index maps."""

import numpy as np
import pytest

from repro.curves import (
    ColumnMajorOrdering,
    HilbertOrdering,
    L4DOrdering,
    MortonOrdering,
    RowMajorOrdering,
    dilate_16,
    hilbert_decode_2d,
    hilbert_encode_2d,
    morton_decode_2d,
    morton_encode_2d,
    undilate_16,
)


class TestRowMajor:
    def test_closed_form(self):
        o = RowMajorOrdering(8, 16)
        assert o.encode(3, 5) == 3 * 16 + 5

    def test_y_moves_are_unit_steps(self):
        o = RowMajorOrdering(8, 8)
        assert o.encode(2, 4) + 1 == o.encode(2, 5)

    def test_x_moves_jump_by_ncy(self):
        o = RowMajorOrdering(8, 16)
        assert o.encode(3, 5) + 16 == o.encode(4, 5)

    def test_rectangular(self):
        o = RowMajorOrdering(4, 32)
        m = o.index_map()
        assert m[0, 31] == 31 and m[1, 0] == 32


class TestColumnMajor:
    def test_closed_form(self):
        o = ColumnMajorOrdering(8, 16)
        assert o.encode(3, 5) == 5 * 8 + 3

    def test_transpose_of_row_major(self):
        rm = RowMajorOrdering(8, 8).index_map()
        cm = ColumnMajorOrdering(8, 8).index_map()
        np.testing.assert_array_equal(cm, rm.T)


class TestL4D:
    def test_paper_closed_form(self):
        # icell = SIZE*ix + mod(iy, SIZE) + ncx*SIZE*(iy/SIZE)  (§IV-B)
        o = L4DOrdering(128, 128, size=8)
        ix, iy = 13, 27
        expected = 8 * ix + (iy % 8) + 128 * 8 * (iy // 8)
        assert o.encode(ix, iy) == expected

    def test_figure4_corners(self):
        # Fig. 4: 128x128, SIZE=8 — first column segment is 0..7, the
        # second (ix=1) 8..15; cell (0,8) starts band 2 at 1024
        o = L4DOrdering(128, 128, size=8)
        assert o.encode(0, 0) == 0
        assert o.encode(0, 7) == 7
        assert o.encode(1, 0) == 8
        assert o.encode(127, 7) == 1023
        assert o.encode(0, 8) == 1024
        assert o.encode(127, 127) == 16383

    def test_size_ncy_is_row_major_permutation(self):
        # paper: SIZE=ncy corresponds to the row-major ordering
        l4d = L4DOrdering(8, 8, size=8).index_map()
        rm = RowMajorOrdering(8, 8).index_map()
        np.testing.assert_array_equal(l4d, rm)

    def test_size_one_is_column_major(self):
        l4d = L4DOrdering(8, 8, size=1).index_map()
        cm = ColumnMajorOrdering(8, 8).index_map()
        np.testing.assert_array_equal(l4d, cm)

    def test_vertical_moves_mostly_unit(self):
        o = L4DOrdering(16, 16, size=8)
        # within a band, +1 in iy moves the index by +1
        assert o.encode(3, 2) + 1 == o.encode(3, 3)
        # crossing the band boundary jumps
        assert o.encode(3, 8) - o.encode(3, 7) != 1

    def test_horizontal_moves_jump_by_size(self):
        o = L4DOrdering(16, 16, size=8)
        assert o.encode(4, 3) + 8 == o.encode(5, 3)

    def test_padding_when_size_does_not_divide(self):
        # paper: "a few allocated cells ... that will never be accessed"
        o = L4DOrdering(8, 10, size=4)
        assert o.nbands == 3
        assert o.ncells_allocated == 8 * 4 * 3  # 96 > 80 real cells
        m = o.index_map()
        assert len(np.unique(m)) == 80
        assert m.max() < o.ncells_allocated

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            L4DOrdering(8, 8, size=0)

    def test_decode_roundtrip_with_padding(self):
        o = L4DOrdering(8, 10, size=4)
        ix = np.arange(8).repeat(10)
        iy = np.tile(np.arange(10), 8)
        jx, jy = o.decode(o.encode(ix, iy))
        np.testing.assert_array_equal(ix, jx)
        np.testing.assert_array_equal(iy, jy)


class TestDilatedIntegers:
    def test_dilate_small_values(self):
        # 0b11 -> 0b0101, 0b111 -> 0b010101
        assert dilate_16(np.array([0b11]))[0] == 0b0101
        assert dilate_16(np.array([0b111]))[0] == 0b010101

    def test_dilate_max_16bit(self):
        v = dilate_16(np.array([0xFFFF]))[0]
        assert v == 0x55555555

    def test_undilate_inverts_dilate(self, rng):
        x = rng.integers(0, 1 << 16, 1000)
        np.testing.assert_array_equal(undilate_16(dilate_16(x)), x.astype(np.uint32))

    def test_dilate_is_bit_interleave_zero(self):
        # dilated bits land in even positions
        x = np.array([0b1011])
        d = int(dilate_16(x)[0])
        for bit in range(16):
            assert ((d >> (2 * bit + 1)) & 1) == 0


class TestMorton:
    def test_known_8x8_map(self):
        # Fig. 3's N-order: the four quadrants of a 4x4 block follow
        # the Z pattern
        o = MortonOrdering(8, 8)
        assert o.encode(0, 0) == 0
        assert o.encode(0, 1) == 1
        assert o.encode(1, 0) == 2
        assert o.encode(1, 1) == 3
        assert o.encode(0, 2) == 4
        assert o.encode(2, 0) == 8
        assert o.encode(7, 7) == 63

    def test_encode_decode_functions(self, rng):
        ix = rng.integers(0, 256, 500)
        iy = rng.integers(0, 256, 500)
        code = morton_encode_2d(ix, iy)
        jx, jy = morton_decode_2d(code)
        np.testing.assert_array_equal(ix, jx)
        np.testing.assert_array_equal(iy, jy)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            MortonOrdering(12, 8)

    def test_rectangular_wide(self):
        o = MortonOrdering(4, 16)
        m = o.index_map()
        assert len(np.unique(m)) == 64
        assert m.max() == 63

    def test_rectangular_tall(self):
        o = MortonOrdering(32, 4)
        m = o.index_map()
        assert len(np.unique(m)) == 128
        assert m.max() == 127

    def test_unit_y_move_often_unit_index(self):
        # half of all +1 y-moves flip only the lowest bit
        o = MortonOrdering(16, 16)
        m = o.index_map()
        deltas = m[:, 1::2] - m[:, 0:-1:2]
        assert np.all(deltas == 1)


class TestHilbert:
    def test_first_quadrant_order_4x4(self):
        # this implementation's 4x4 walk starts (0,0)->(1,0)->(1,1)->(0,1)
        # (the x-first reflection of the canonical curve)
        d = hilbert_encode_2d(2, np.array([0, 1, 1, 0]), np.array([0, 0, 1, 1]))
        np.testing.assert_array_equal(d, [0, 1, 2, 3])

    def test_encode_decode_roundtrip(self, rng):
        order = 6
        ix = rng.integers(0, 64, 1000)
        iy = rng.integers(0, 64, 1000)
        jx, jy = hilbert_decode_2d(order, hilbert_encode_2d(order, ix, iy))
        np.testing.assert_array_equal(ix, jx)
        np.testing.assert_array_equal(iy, jy)

    def test_consecutive_indices_are_grid_neighbors(self):
        # the defining Hilbert property
        order = 4
        n = 1 << order
        d = np.arange(n * n)
        x, y = hilbert_decode_2d(order, d)
        step = np.abs(np.diff(x)) + np.abs(np.diff(y))
        np.testing.assert_array_equal(step, np.ones(n * n - 1))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            HilbertOrdering(8, 6)

    def test_rectangular_tiles(self):
        o = HilbertOrdering(16, 4)
        m = o.index_map()
        assert len(np.unique(m)) == 64
        # second tile starts after the first square's 16 cells
        assert sorted(m[:4, :].ravel()) == list(range(16))
