"""3D checkpoint/resume tests (repro.core.checkpoint, 3D half).

Mirrors the 2D park/restore guarantee from
``test_service_engine.py::TestPreemptResume``: a 3D run preempted at a
step boundary and resumed from its checkpoint must be **bitwise
identical** to the uninterrupted run — on the numpy backend and when
resumed onto ``numpy-mp`` (the backend switch the supervisor uses).
Plus the error surface: torn archives, version/config mismatches, and
cross-dimensional loads are :class:`CheckpointMismatchError`, never a
raw traceback.
"""

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointMismatchError,
    load_checkpoint,
    load_checkpoint_3d,
    save_checkpoint_3d,
)
from repro.core.config import OptimizationConfig
from repro.pic3d import GridSpec3D, PICStepper3D, TwoStream3D
from repro.pic3d.stepper3d import PARTICLE_KEYS_3D


def _grid():
    return GridSpec3D(8, 8, 4, xmax=4 * np.pi, ymax=2 * np.pi,
                      zmax=2 * np.pi)


def _config(**overrides):
    params = dict(
        field_layout="redundant", ordering="morton", loop_mode="split",
        position_update="bitwise", hoisting=True, sort_period=3,
        backend="numpy",
    )
    params.update(overrides)
    return OptimizationConfig(**params)


def _fresh(n=1500, cfg=None):
    return PICStepper3D(_grid(), TwoStream3D(), n, dt=0.1,
                        config=cfg or _config())


def _assert_state_equal(a, b):
    for key in PARTICLE_KEYS_3D:
        assert np.asarray(a.particles[key]).tobytes() == \
            np.asarray(b.particles[key]).tobytes(), key
    for name in ("rho_grid", "ex_grid", "ey_grid", "ez_grid"):
        assert np.asarray(getattr(a, name)).tobytes() == \
            np.asarray(getattr(b, name)).tobytes(), name


class TestRoundtrip:
    def test_save_load_preserves_state_verbatim(self, tmp_path):
        s = _fresh()
        try:
            s.run(5)
            path = save_checkpoint_3d(s, tmp_path / "ck")
            assert path.suffix == ".npz"
            restored = load_checkpoint_3d(path)
            try:
                assert restored.iteration == s.iteration
                assert restored.weight == s.weight
                assert restored.grid.shape == s.grid.shape
                _assert_state_equal(restored, s)
            finally:
                restored.close()
        finally:
            s.close()

    def test_compressed_roundtrip(self, tmp_path):
        s = _fresh(n=400)
        try:
            s.run(2)
            path = save_checkpoint_3d(s, tmp_path / "ck", compress=True)
            restored = load_checkpoint_3d(path)
            try:
                _assert_state_equal(restored, s)
            finally:
                restored.close()
        finally:
            s.close()


class TestPreemptResume3D:
    def test_preempt_then_resume_bitwise_equals_uninterrupted(self, tmp_path):
        """The 3D twin of the 2D headline guarantee: park/restore
        costs zero ULPs across sorts and field solves."""
        ref = _fresh()
        ref.run(20)
        a = _fresh()
        a.run(8)
        park = save_checkpoint_3d(a, tmp_path / "park")
        a.close()
        resumed = load_checkpoint_3d(park)
        try:
            resumed.run(12)
            _assert_state_equal(resumed, ref)
        finally:
            resumed.close()
            ref.close()

    def test_resume_onto_numpy_mp_bitwise(self, tmp_path):
        """Backend switch on restore (the supervisor's degrade move):
        the mp cell-ownership deposit keeps the run bitwise."""
        ref = _fresh()
        ref.run(14)
        a = _fresh()
        a.run(6)
        park = save_checkpoint_3d(a, tmp_path / "park")
        a.close()
        resumed = load_checkpoint_3d(
            park, _config(backend="numpy-mp", workers=2)
        )
        try:
            resumed.run(8)
            _assert_state_equal(resumed, ref)
        finally:
            resumed.close()
            ref.close()


class TestErrorSurface:
    def test_missing_file_raises_mismatch(self, tmp_path):
        with pytest.raises(CheckpointMismatchError):
            load_checkpoint_3d(tmp_path / "nope.npz")

    def test_torn_archive_raises_mismatch(self, tmp_path):
        s = _fresh(n=300)
        try:
            path = save_checkpoint_3d(s, tmp_path / "ck")
        finally:
            s.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointMismatchError):
            load_checkpoint_3d(path)

    def test_incompatible_config_rejected(self, tmp_path):
        s = _fresh(n=300)
        try:
            path = save_checkpoint_3d(s, tmp_path / "ck")
        finally:
            s.close()
        with pytest.raises(CheckpointMismatchError, match="ordering"):
            load_checkpoint_3d(path, _config(ordering="row-major"))

    def test_2d_loader_rejects_3d_archive_and_vice_versa(self, tmp_path):
        s = _fresh(n=300)
        try:
            path3d = save_checkpoint_3d(s, tmp_path / "ck3d")
        finally:
            s.close()
        with pytest.raises(CheckpointMismatchError, match="version"):
            load_checkpoint(path3d)

        from repro.core.stepper import PICStepper
        from repro.core.checkpoint import save_checkpoint
        from repro.grid.spec import GridSpec
        from repro.particles.initializers import LandauDamping

        s2 = PICStepper(
            GridSpec(16, 8, xmax=4 * np.pi, ymax=2 * np.pi), _config(),
            case=LandauDamping(alpha=0.1), n_particles=200, seed=0,
            quiet=True,
        )
        try:
            path2d = save_checkpoint(s2, tmp_path / "ck2d")
        finally:
            s2.close()
        with pytest.raises(CheckpointMismatchError, match="version"):
            load_checkpoint_3d(path2d)
