"""Tests for the ordering registry and CellOrdering base behaviour."""

import numpy as np
import pytest

from repro.curves import (
    CellOrdering,
    available_orderings,
    get_ordering,
    register_ordering,
)
from repro.curves.base import require_power_of_two


class TestRegistry:
    def test_builtin_orderings_registered(self):
        names = available_orderings()
        for expected in ("row-major", "column-major", "l4d", "morton", "hilbert"):
            assert expected in names

    def test_get_ordering_case_insensitive(self):
        o = get_ordering("Morton", 8, 8)
        assert o.name == "morton"

    def test_get_ordering_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="row-major"):
            get_ordering("zigzag", 8, 8)

    def test_get_ordering_passes_kwargs(self):
        o = get_ordering("l4d", 16, 16, size=4)
        assert o.size == 4

    def test_register_custom_ordering(self):
        class Flipped(CellOrdering):
            name = "flipped-test"

            def encode(self, ix, iy):
                return (self.ncx - 1 - np.asarray(ix)) * self.ncy + np.asarray(iy)

            def decode(self, icell):
                icell = np.asarray(icell)
                return self.ncx - 1 - icell // self.ncy, icell % self.ncy

        register_ordering("flipped-test", Flipped)
        o = get_ordering("flipped-test", 4, 4)
        assert o.encode(3, 0) == 0


class TestBaseBehaviour:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            get_ordering("row-major", 0, 8)
        with pytest.raises(ValueError):
            get_ordering("row-major", 8, -1)

    def test_ncells(self):
        o = get_ordering("row-major", 8, 4)
        assert o.ncells == 32
        assert o.ncells_allocated == 32

    def test_encode_checked_rejects_out_of_bounds(self):
        o = get_ordering("row-major", 8, 8)
        with pytest.raises(ValueError):
            o.encode_checked(8, 0)
        with pytest.raises(ValueError):
            o.encode_checked(0, -1)

    def test_encode_checked_accepts_in_bounds(self):
        o = get_ordering("row-major", 8, 8)
        assert o.encode_checked(7, 7) == 63

    def test_index_map_shape(self, any_ordering):
        m = any_ordering.index_map()
        assert m.shape == (16, 16)

    def test_index_map_bijective_on_real_cells(self, any_ordering):
        m = any_ordering.index_map()
        assert len(np.unique(m)) == any_ordering.ncells
        assert m.min() >= 0
        assert m.max() < any_ordering.ncells_allocated

    def test_decode_inverts_encode(self, any_ordering):
        m = any_ordering.index_map()
        ix, iy = any_ordering.decode(m.ravel())
        gx, gy = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        np.testing.assert_array_equal(ix, gx.ravel())
        np.testing.assert_array_equal(iy, gy.ravel())

    def test_neighbor_index_periodic(self, any_ordering):
        o = any_ordering
        icell = o.encode(np.array([0]), np.array([0]))
        left = o.neighbor_index(icell, -1, 0)
        ix, iy = o.decode(left)
        assert ix[0] == o.ncx - 1 and iy[0] == 0

    def test_neighbor_index_interior(self, any_ordering):
        o = any_ordering
        icell = o.encode(np.array([5]), np.array([5]))
        up = o.neighbor_index(icell, 0, 1)
        ix, iy = o.decode(up)
        assert ix[0] == 5 and iy[0] == 6

    def test_scalar_encode_works(self, any_ordering):
        v = any_ordering.encode(3, 4)
        assert np.asarray(v).shape == ()


class TestRequirePowerOfTwo:
    @pytest.mark.parametrize("n,log", [(1, 0), (2, 1), (8, 3), (1024, 10)])
    def test_accepts_powers(self, n, log):
        assert require_power_of_two(n, "x") == log

    @pytest.mark.parametrize("n", [0, -4, 3, 6, 12, 100])
    def test_rejects_non_powers(self, n):
        with pytest.raises(ValueError):
            require_power_of_two(n, "x")
