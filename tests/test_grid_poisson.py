"""Poisson-solver tests: manufactured solutions, solver cross-checks."""

import numpy as np
import pytest

from repro.grid import (
    GridSpec,
    JacobiPoissonSolver,
    SpectralPoissonSolver,
    laplacian_periodic,
)


@pytest.fixture
def grid():
    return GridSpec(32, 32, 0.0, 2 * np.pi, 0.0, 2 * np.pi)


def single_mode_rho(grid, mx=1, my=0, amp=1.0):
    gx, gy = grid.node_coords()
    kx = 2 * np.pi * mx / grid.lx
    ky = 2 * np.pi * my / grid.ly
    return amp * np.cos(kx * gx + ky * gy), (kx, ky)


class TestSpectralSolver:
    def test_single_mode_potential(self, grid):
        # -lap(phi) = rho => phi = rho / k^2 for a single mode
        rho, (kx, ky) = single_mode_rho(grid, 1, 0)
        phi = SpectralPoissonSolver(grid).solve_potential(rho)
        np.testing.assert_allclose(phi, rho / kx**2, atol=1e-12)

    def test_mixed_mode_potential(self, grid):
        rho, (kx, ky) = single_mode_rho(grid, 2, 3)
        phi = SpectralPoissonSolver(grid).solve_potential(rho)
        np.testing.assert_allclose(phi, rho / (kx**2 + ky**2), atol=1e-12)

    def test_field_is_minus_gradient(self, grid):
        gx, _ = grid.node_coords()
        kx = 2 * np.pi / grid.lx
        rho = np.cos(kx * gx)
        _, ex, ey = SpectralPoissonSolver(grid).solve(rho)
        # E = -d/dx (cos(kx x)/kx^2) = sin(kx x)/kx
        np.testing.assert_allclose(ex, np.sin(kx * gx) / kx, atol=1e-12)
        np.testing.assert_allclose(ey, 0.0, atol=1e-12)

    def test_mean_mode_projected_out(self, grid, rng):
        rho = rng.random((32, 32))
        phi = SpectralPoissonSolver(grid).solve_potential(rho)
        assert abs(phi.mean()) < 1e-12
        # adding a constant to rho changes nothing
        phi2 = SpectralPoissonSolver(grid).solve_potential(rho + 5.0)
        np.testing.assert_allclose(phi, phi2, atol=1e-12)

    def test_eps0_scaling(self, grid):
        rho, _ = single_mode_rho(grid)
        phi1 = SpectralPoissonSolver(grid, eps0=1.0).solve_potential(rho)
        phi2 = SpectralPoissonSolver(grid, eps0=2.0).solve_potential(rho)
        np.testing.assert_allclose(phi1, 2 * phi2, atol=1e-12)

    def test_residual_random_rho(self, grid, rng):
        # with the fd derivative the discrete residual closes exactly
        # at spectral accuracy for band-limited rho
        rho = rng.standard_normal((32, 32))
        rho -= rho.mean()
        solver = SpectralPoissonSolver(grid)
        phi = solver.solve_potential(rho)
        # spectral laplacian equals rho: check via FFT round trip
        res = -laplacian_periodic(phi, grid.dx, grid.dy) - rho
        # 5-point laplacian differs from spectral at high k: loose bound
        assert np.abs(res).max() < np.abs(rho).max()

    def test_rejects_wrong_shape(self, grid):
        with pytest.raises(ValueError):
            SpectralPoissonSolver(grid).solve_potential(np.zeros((8, 8)))

    def test_rejects_unknown_derivative(self, grid):
        with pytest.raises(ValueError):
            SpectralPoissonSolver(grid, derivative="nope")

    def test_rectangular_grid(self):
        g = GridSpec(64, 16, 0.0, 4 * np.pi, 0.0, np.pi)
        rho, (kx, _) = single_mode_rho(g, 1, 0)
        phi = SpectralPoissonSolver(g).solve_potential(rho)
        np.testing.assert_allclose(phi, rho / kx**2, atol=1e-12)


class TestJacobiSolver:
    def test_agrees_with_spectral_on_smooth_rho(self, grid):
        rho, _ = single_mode_rho(grid, 1, 1)
        spec = SpectralPoissonSolver(grid, derivative="fd")
        jac = JacobiPoissonSolver(grid, tol=1e-11)
        phi_s = spec.solve_potential(rho)
        phi_j = jac.solve_potential(rho)
        # both are zero-mean; Jacobi solves the 5-point stencil which
        # differs from spectral by O(h^2)
        assert np.abs(phi_j - phi_s).max() < 0.05 * np.abs(phi_s).max()

    def test_residual_below_tolerance(self, grid, rng):
        rho = rng.standard_normal((32, 32)) * 0.1
        jac = JacobiPoissonSolver(grid, tol=1e-9)
        phi = jac.solve_potential(rho)
        rhs = rho - rho.mean()
        res = -laplacian_periodic(phi, grid.dx, grid.dy) - rhs
        assert np.linalg.norm(res) / np.linalg.norm(rhs) < 1e-8

    def test_iteration_count_recorded(self, grid):
        rho, _ = single_mode_rho(grid)
        jac = JacobiPoissonSolver(grid)
        jac.solve_potential(rho)
        assert jac.last_iterations > 0


class TestLaplacian:
    def test_periodic_laplacian_of_mode(self, grid):
        rho, (kx, _) = single_mode_rho(grid, 1, 0)
        lap = laplacian_periodic(rho, grid.dx, grid.dy)
        # discrete eigenvalue: -(2 - 2 cos(kx dx))/dx^2
        lam = -(2 - 2 * np.cos(kx * grid.dx)) / grid.dx**2
        np.testing.assert_allclose(lap, lam * rho, atol=1e-12)

    def test_constant_has_zero_laplacian(self):
        lap = laplacian_periodic(np.full((8, 8), 3.0), 0.1, 0.2)
        np.testing.assert_allclose(lap, 0.0, atol=1e-10)
