"""Simulated-MPI tests: collectives, determinism, failure handling."""

import numpy as np
import pytest

from repro.parallel.mpi import CollectiveCostModel, SimMPI


class TestAllreduce:
    def test_sums_across_ranks(self):
        def fn(comm):
            local = np.full(4, float(comm.rank + 1))
            return comm.allreduce(local)

        results = SimMPI(4).run(fn)
        for r in results:
            np.testing.assert_array_equal(r, np.full(4, 10.0))

    def test_identical_on_all_ranks_bitwise(self):
        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.random(100))

        results = SimMPI(5).run(fn)
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])

    def test_matches_serial_rank_order_sum(self):
        arrays = [np.random.default_rng(r).random(50) for r in range(3)]

        def fn(comm):
            return comm.allreduce(arrays[comm.rank])

        out = SimMPI(3).run(fn)[0]
        expected = arrays[0].copy()
        expected += arrays[1]
        expected += arrays[2]
        np.testing.assert_array_equal(out, expected)

    def test_repeated_allreduce(self):
        def fn(comm):
            total = 0.0
            for i in range(5):
                total += comm.allreduce(np.array([float(comm.rank + i)]))[0]
            return total

        results = SimMPI(2).run(fn)
        # per round: (0+i)+(1+i) = 1+2i; sum over i=0..4: 5 + 2*10 = 25
        assert results == [25.0, 25.0]

    def test_single_rank(self):
        out = SimMPI(1).run(lambda c: c.allreduce(np.array([3.0])))
        assert out[0][0] == 3.0


class TestOtherCollectives:
    def test_bcast(self):
        def fn(comm):
            data = np.arange(5.0) if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        for r in SimMPI(3).run(fn):
            np.testing.assert_array_equal(r, np.arange(5.0))

    def test_bcast_requires_root_data(self):
        def fn(comm):
            return comm.bcast(None, root=0)

        with pytest.raises(ValueError):
            SimMPI(2).run(fn)

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank * 10, root=1)

        results = SimMPI(3).run(fn)
        assert results[1] == [0, 10, 20]
        assert results[0] is None and results[2] is None

    def test_allgather(self):
        results = SimMPI(3).run(lambda c: c.allgather(c.rank**2))
        assert all(r == [0, 1, 4] for r in results)

    def test_barrier_orders_phases(self):
        log = []

        def fn(comm):
            log.append(("before", comm.rank))
            comm.barrier()
            log.append(("after", comm.rank))

        SimMPI(3).run(fn)
        phases = [p for p, _ in log]
        assert phases.index("after") >= 3  # all befores precede any after


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1)
                return None
            return comm.recv(source=0)

        results = SimMPI(2).run(fn)
        assert results[1] == {"x": 42}

    def test_tags_separate_channels(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            # receive in reverse tag order
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        assert SimMPI(2).run(fn)[1] == ("a", "b")

    def test_ring_pass(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right)
            return comm.recv(source=left)

        results = SimMPI(4).run(fn)
        assert results == [3, 0, 1, 2]


class TestRuntime:
    def test_rejects_bad_rank_count(self):
        with pytest.raises(ValueError):
            SimMPI(0)

    def test_rank_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            SimMPI(3).run(fn)

    def test_results_in_rank_order(self):
        results = SimMPI(6).run(lambda c: c.rank)
        assert results == list(range(6))


class TestCollectiveCostModel:
    def test_single_rank_free(self):
        assert CollectiveCostModel().allreduce_seconds(1, 1 << 20) == 0.0

    def test_grows_with_ranks(self):
        m = CollectiveCostModel()
        costs = [m.allreduce_seconds(p, 131072, 1.0) for p in (2, 8, 64, 512, 8192)]
        assert costs == sorted(costs)

    def test_grows_with_bytes(self):
        m = CollectiveCostModel()
        assert m.allreduce_seconds(16, 1 << 22) > m.allreduce_seconds(16, 1 << 10)

    def test_skew_scales_with_compute(self):
        m = CollectiveCostModel()
        slow = m.allreduce_seconds(64, 1024, compute_iter_seconds=1.0)
        fast = m.allreduce_seconds(64, 1024, compute_iter_seconds=0.01)
        assert slow > fast

    def test_fig7_anchor_pure_mpi_8192(self):
        """At Fig. 7's scale the skew term dominates: ~2 s per call at
        8192 ranks with ~1.1 s/iter compute."""
        m = CollectiveCostModel()
        t = m.allreduce_seconds(8192, 128 * 128 * 8, compute_iter_seconds=1.1)
        assert 1.0 < t < 4.0
