"""Locality-metric tests: the quantitative §IV-B arguments."""

import numpy as np
import pytest

from repro.curves import (
    get_ordering,
    index_distance_histogram,
    mean_neighbor_distance,
    neighbor_locality_report,
)


class TestUnitMoveStatistics:
    def test_row_major_y_moves_all_close(self):
        o = get_ordering("row-major", 64, 64)
        h = index_distance_histogram(o, 0, 1)
        assert h["<=1"] == 1.0

    def test_row_major_x_moves_all_far(self):
        o = get_ordering("row-major", 64, 64)
        h = index_distance_histogram(o, 1, 0)
        assert h["<=8"] == 0.0
        assert h["<=64"] == 1.0  # all exactly ncy away

    def test_l4d_seven_eighths_of_x_moves_close(self):
        # paper: with SIZE=8, 7/8 of horizontal moves give icell+SIZE...
        # vertical moves: 7/8 give icell+1
        o = get_ordering("l4d", 64, 64, size=8)
        hv = index_distance_histogram(o, 0, 1)
        # 7 of every 8 vertical steps stay inside a band; with the 63
        # interior steps per column that is 56/63
        assert hv["<=1"] == pytest.approx(56 / 63)
        hh = index_distance_histogram(o, 1, 0)
        assert hh["<=8"] == pytest.approx(1.0)  # always exactly SIZE

    def test_morton_half_of_y_moves_unit(self):
        o = get_ordering("morton", 64, 64)
        h = index_distance_histogram(o, 0, 1)
        assert h["<=1"] == pytest.approx(0.5, abs=0.02)

    def test_mean_distance_row_major(self):
        o = get_ordering("row-major", 32, 32)
        assert mean_neighbor_distance(o, 0, 1) == 1.0
        assert mean_neighbor_distance(o, 1, 0) == 32.0


class TestLocalityReport:
    @pytest.fixture(scope="class")
    def reports(self):
        names = ["row-major", "l4d", "morton", "hilbert"]
        return {
            n: neighbor_locality_report(get_ordering(n, 64, 64)) for n in names
        }

    def test_row_major_half_close(self, reports):
        # y moves close, x moves far -> 0.5 isotropic
        assert reports["row-major"].frac_close_isotropic == pytest.approx(0.5, abs=0.01)

    def test_nonlinear_layouts_beat_row_major(self, reports):
        rm = reports["row-major"].frac_close_isotropic
        for name in ("l4d", "morton", "hilbert"):
            assert reports[name].frac_close_isotropic > rm + 0.15, name

    def test_l4d_best_close_fraction(self, reports):
        # the paper's 7/8-close argument makes L4D the strongest on
        # this metric (~15/16 of unit moves land within SIZE)
        assert reports["l4d"].frac_close_isotropic > 0.9

    def test_report_fields(self, reports):
        r = reports["morton"]
        assert r.ordering_name == "morton"
        assert r.close_threshold == 8
        assert 0 <= r.frac_close_dx <= 1
        assert 0 <= r.frac_close_dy <= 1
        assert r.mean_isotropic == pytest.approx((r.mean_dx + r.mean_dy) / 2)

    def test_hilbert_bounded_mean(self, reports):
        # Hilbert's worst moves are rare; its mean jump stays below
        # row-major's
        assert reports["hilbert"].mean_isotropic < 2 * reports["row-major"].mean_isotropic


class TestHistogramEdgeCases:
    def test_histogram_keys(self):
        o = get_ordering("row-major", 8, 8)
        h = index_distance_histogram(o, 0, 1, bins=(1, np.inf))
        assert set(h) == {"<=1", "<=inf"}
        assert h["<=inf"] == 1.0

    def test_cumulative_monotone(self):
        o = get_ordering("morton", 16, 16)
        h = index_distance_histogram(o, 1, 0)
        vals = list(h.values())
        assert vals == sorted(vals)
