"""CLI tests (driving main() in-process, capturing stdout)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_case(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "tokamak"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.case == "landau"
        assert args.ordering == "morton"
        assert args.seed is None


class TestInfo:
    def test_lists_orderings_and_machines(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        for token in ("morton", "hilbert", "haswell", "sandybridge", "channels"):
            assert token in out


class TestOrderings:
    def test_morton_map(self, capsys):
        code, out = run_cli(capsys, "orderings", "--ordering", "morton", "--size", "4")
        assert code == 0
        # 4x4 morton contains indices 0..15, first row "0 1 4 5"
        assert "0 1 4 5" in out.replace("  ", " ").replace("  ", " ")

    def test_l4d_tile_param(self, capsys):
        code, out = run_cli(
            capsys, "orderings", "--ordering", "l4d", "--size", "8", "--l4d-size", "2"
        )
        assert code == 0
        assert "allocated 64" in out


class TestLocality:
    def test_reports_all_orderings(self, capsys):
        code, out = run_cli(capsys, "locality", "--size", "16")
        assert code == 0
        for name in ("row-major", "l4d", "morton", "hilbert"):
            assert name in out
        # row-major is the 50% anchor
        assert "50.0%" in out


class TestTuneSort:
    @pytest.mark.parametrize("machine", ["haswell", "sandybridge"])
    def test_reports_best(self, capsys, machine):
        code, out = run_cli(capsys, "tune-sort", "--machine", machine,
                            "--particles", "1000000")
        assert code == 0
        assert "<- best" in out

    def test_growth_changes_optimum(self, capsys):
        _, out_lo = run_cli(capsys, "tune-sort", "--growth", "0.01")
        _, out_hi = run_cli(capsys, "tune-sort", "--growth", "0.8")

        def best_period(text):
            for line in text.splitlines():
                if "<- best" in line:
                    return int(line.split("sort every")[1].split(":")[0])
            raise AssertionError("no best line")

        assert best_period(out_hi) <= best_period(out_lo)


class TestMisses:
    def test_reports_requested_orderings(self, capsys):
        code, out = run_cli(
            capsys, "misses", "--orderings", "row-major", "morton",
            "--particles", "4000", "--iterations", "3", "--grid-side", "32",
            "--sort-period", "2",
        )
        assert code == 0
        assert "row-major" in out and "morton" in out
        assert "scaled machine" in out

    def test_single_ordering(self, capsys):
        code, out = run_cli(
            capsys, "misses", "--orderings", "l4d",
            "--particles", "2000", "--iterations", "2", "--grid-side", "16",
        )
        assert code == 0
        assert "l4d" in out


class TestRun:
    def test_landau_quickrun(self, capsys):
        code, out = run_cli(
            capsys, "run", "--case", "landau", "--particles", "5000",
            "--steps", "5", "--grid", "16", "8", "--every", "5",
        )
        assert code == 0
        assert "energy drift" in out
        assert "throughput" in out

    def test_seeded_run_deterministic(self, capsys):
        argv = ["run", "--case", "landau", "--particles", "3000",
                "--steps", "3", "--grid", "16", "8", "--seed", "7"]
        _, out1 = run_cli(capsys, *argv)
        _, out2 = run_cli(capsys, *argv)

        def physics_lines(text):  # drop the wall-clock output (throughput
            # line and per-phase breakdown), which differs run to run
            lines = text.splitlines()
            return lines[: lines.index(next(l for l in lines if "throughput" in l))]

        assert physics_lines(out1) == physics_lines(out2)

    def test_hilbert_ordering_switches_update(self, capsys):
        # hilbert must run (position update silently switched to modulo)
        code, out = run_cli(
            capsys, "run", "--particles", "2000", "--steps", "2",
            "--grid", "16", "8", "--ordering", "hilbert",
        )
        assert code == 0
        assert "ordering=hilbert" in out

    def test_checkpoint_written(self, capsys, tmp_path):
        ck = tmp_path / "state.npz"
        code, out = run_cli(
            capsys, "run", "--particles", "2000", "--steps", "2",
            "--grid", "16", "8", "--checkpoint", str(ck),
        )
        assert code == 0
        assert ck.exists()
        from repro.core.checkpoint import load_checkpoint

        st = load_checkpoint(ck)
        assert st.iteration == 2

    def test_bump_on_tail_case(self, capsys):
        code, out = run_cli(
            capsys, "run", "--case", "bump-on-tail", "--particles", "4000",
            "--steps", "3", "--grid", "16", "8",
        )
        assert code == 0
        assert "case=bump-on-tail" in out

    def test_gaussian_bump_case_with_partition(self, capsys):
        code, out = run_cli(
            capsys, "run", "--case", "gaussian-bump", "--particles", "4000",
            "--steps", "3", "--grid", "16", "16",
            "--partition", "curve-balanced", "--repartition-every", "2",
        )
        assert code == 0
        assert "case=gaussian-bump" in out

    def test_rejects_unknown_partition(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--partition", "zigzag"]
            )


class TestCalibrateCommand:
    def test_calibrate_roundtrip_is_deterministic(self, capsys, tmp_path):
        tj = tmp_path / "timings.json"
        code, _ = run_cli(
            capsys, "run", "--particles", "3000", "--steps", "4",
            "--grid", "16", "8", "--timings-json", str(tj),
        )
        assert code == 0
        out1 = tmp_path / "cal1.json"
        out2 = tmp_path / "cal2.json"
        for out_path in (out1, out2):
            code, text = run_cli(
                capsys, "calibrate", "--timings", str(tj),
                "--output", str(out_path),
            )
            assert code == 0
            assert "stall_overlap" in text
        assert out1.read_text() == out2.read_text()
        import json

        cal = json.loads(out1.read_text())
        assert 0.0 <= cal["stall_overlap"] <= 1.0
        assert set(cal["loops"]) == {"update_v", "update_x", "accumulate"}


class TestSupervisedRunCommand:
    def test_supervised_run_reports(self, capsys, tmp_path):
        tj = tmp_path / "timings.json"
        code, out = run_cli(
            capsys, "run", "--particles", "2000", "--steps", "6",
            "--grid", "16", "8", "--supervise", "--checkpoint-every", "2",
            "--timings-json", str(tj),
        )
        assert code == 0
        assert "supervised=[default]" in out
        assert "supervisor  :" in out and "0 rollback(s)" in out
        import json

        rec = json.loads(tj.read_text())
        assert rec["supervisor"]["checkpoints_written"] >= 1
        assert rec["supervisor"]["guards"] == ["finite", "cells", "charge"]

    def test_checkpoint_dir_kept(self, capsys, tmp_path):
        ckdir = tmp_path / "rot"
        code, _ = run_cli(
            capsys, "run", "--particles", "2000", "--steps", "4",
            "--grid", "16", "8", "--supervise", "--checkpoint-every", "2",
            "--keep-checkpoints", "2", "--checkpoint-dir", str(ckdir),
        )
        assert code == 0
        assert list(ckdir.glob("ckpt-*.npz"))

    def test_bad_guard_spec_rejected(self, capsys):
        code, _ = run_cli(
            capsys, "run", "--particles", "1000", "--steps", "2",
            "--grid", "16", "8", "--supervise", "--guards", "entropy",
        )
        assert code == 2
