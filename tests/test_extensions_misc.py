"""Tests for the smaller extensions: interlaced fields, new diagnostics,
bump-on-tail initial condition."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    momentum,
    phase_space_histogram,
    velocity_histogram,
    velocity_moments,
)
from repro.grid import GridSpec, InterlacedFields, StandardFields
from repro.particles import BumpOnTail


class TestInterlacedFields:
    @pytest.fixture
    def fields(self, small_grid):
        return InterlacedFields(small_grid)

    def test_component_views_alias_storage(self, fields, rng):
        ex = rng.random((16, 16))
        ey = rng.random((16, 16))
        fields.set_field_from_grid(ex, ey)
        np.testing.assert_array_equal(fields.ex, ex)
        np.testing.assert_array_equal(fields.ey, ey)
        # views alias exy: writing through them lands in the record
        fields.ex[3, 4] = 99.0
        assert fields.exy[3, 4, 0] == 99.0

    def test_views_are_strided(self, fields):
        # the defining property: component access is stride-2 doubles
        assert fields.ex.strides[-1] == 16
        assert fields.ey.strides[-1] == 16

    def test_point_record_contiguous(self, fields, rng):
        fields.set_field_from_grid(rng.random((16, 16)), rng.random((16, 16)))
        rec = fields.exy[5, 7]
        assert rec.flags["C_CONTIGUOUS"]
        assert rec.shape == (2,)

    def test_interpolation_agrees_with_standard(self, small_grid, rng):
        """The layout changes memory, not math: interpolating from the
        strided views equals the standard layout exactly."""
        from repro.core.kernels import interpolate_standard
        from tests.conftest import random_particle_arrays

        inter = InterlacedFields(small_grid)
        std = StandardFields(small_grid)
        ex = rng.random((16, 16))
        ey = rng.random((16, 16))
        inter.set_field_from_grid(ex, ey)
        std.set_field_from_grid(ex, ey)
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 200, 16, 16)
        fx1, fy1 = interpolate_standard(inter.ex, inter.ey, ix, iy, dx, dy)
        fx2, fy2 = interpolate_standard(std.ex, std.ey, ix, iy, dx, dy)
        np.testing.assert_allclose(fx1, fx2, atol=1e-14)
        np.testing.assert_allclose(fy1, fy2, atol=1e-14)

    def test_rho_and_reset(self, fields):
        fields.rho[1, 1] = 5.0
        assert fields.rho_grid()[1, 1] == 5.0
        fields.reset_rho()
        assert fields.rho.sum() == 0.0

    def test_memory_between_standard_and_redundant(self, small_grid):
        from repro.curves import get_ordering
        from repro.grid import RedundantFields

        inter = InterlacedFields(small_grid).memory_bytes
        std = StandardFields(small_grid).memory_bytes
        red = RedundantFields(small_grid, get_ordering("morton", 16, 16)).memory_bytes
        assert inter == std  # same data, different arrangement
        assert red > 3 * inter


class TestMomentum:
    def test_formula(self):
        px, py = momentum(np.array([1.0, 2.0]), np.array([-1.0, 0.5]), 2.0, 3.0)
        assert px == pytest.approx(2.0 * 3.0 * 3.0)
        assert py == pytest.approx(2.0 * 3.0 * -0.5)

    def test_conserved_in_periodic_run(self):
        from repro.core import OptimizationConfig, PICStepper
        from repro.particles import LandauDamping

        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        st = PICStepper(
            grid, OptimizationConfig.fully_optimized(),
            case=LandauDamping(alpha=0.1), n_particles=5000,
            dt=0.1, quiet=True, seed=None,
        )
        vx, vy = st.physical_velocities()
        p0 = momentum(vx, vy, st.particles.weight)
        st.run(20)
        vx, vy = st.physical_velocities()
        p1 = momentum(vx, vy, st.particles.weight)
        scale = st.particles.weight * st.particles.n  # typical momentum scale
        assert abs(p1[0] - p0[0]) < 1e-6 * scale
        assert abs(p1[1] - p0[1]) < 1e-6 * scale


class TestVelocityDiagnostics:
    def test_moments_of_maxwellian(self, rng):
        v = rng.normal(0.5, 2.0, 400_000)
        m = velocity_moments(v)
        assert m["mean"] == pytest.approx(0.5, abs=0.02)
        assert m["std"] == pytest.approx(2.0, rel=0.01)
        assert abs(m["skewness"]) < 0.02
        assert abs(m["excess_kurtosis"]) < 0.05

    def test_moments_of_bimodal(self, rng):
        v = np.concatenate([rng.normal(-3, 0.2, 50_000), rng.normal(3, 0.2, 50_000)])
        m = velocity_moments(v)
        assert m["excess_kurtosis"] < -1.5  # strongly bimodal

    def test_moments_degenerate(self):
        m = velocity_moments(np.full(10, 1.5))
        assert m["std"] == 0.0 and m["skewness"] == 0.0

    def test_histogram_normalized(self, rng):
        v = rng.normal(0, 1, 100_000)
        centers, f = velocity_histogram(v, vmax=6.0, bins=48)
        width = centers[1] - centers[0]
        assert np.sum(f) * width == pytest.approx(1.0, rel=1e-12)
        # shape: peaks near 0
        assert abs(centers[np.argmax(f)]) < 0.5

    def test_histogram_rejects_bad_vmax(self):
        with pytest.raises(ValueError):
            velocity_histogram(np.zeros(5), vmax=0.0)


class TestPhaseSpaceHistogram:
    def test_counts_all_particles(self):
        from repro.core import OptimizationConfig, PICStepper
        from repro.particles import TwoStream

        grid = GridSpec(16, 16, 0.0, 10 * np.pi, 0.0, 10 * np.pi)
        st = PICStepper(
            grid, OptimizationConfig.fully_optimized(),
            case=TwoStream(), n_particles=4000, dt=0.1, quiet=True, seed=None,
        )
        h = phase_space_histogram(st, vmax=8.0, bins=(32, 16))
        assert h.shape == (32, 16)
        assert h.sum() == 4000

    def test_two_stream_is_bimodal_in_v(self):
        from repro.core import OptimizationConfig, PICStepper
        from repro.particles import TwoStream

        grid = GridSpec(16, 16, 0.0, 10 * np.pi, 0.0, 10 * np.pi)
        st = PICStepper(
            grid, OptimizationConfig.fully_optimized(),
            case=TwoStream(v0=2.4, vth=0.1), n_particles=8000,
            dt=0.1, quiet=True, seed=None,
        )
        h = phase_space_histogram(st, vmax=5.0, bins=(16, 20))
        v_profile = h.sum(axis=0)
        mid = len(v_profile) // 2
        # hole at v=0, mass at the beams
        assert v_profile[mid - 1 : mid + 1].sum() < 0.05 * v_profile.sum()


class TestBumpOnTail:
    def test_velocity_distribution_shape(self):
        case = BumpOnTail(n_beam=0.2, v_beam=4.0, vth=1.0, vth_beam=0.3)
        g = case.default_grid()
        _, _, vx, _ = case.sample(100_000, g, None, quiet=True)
        # beam fraction
        assert np.mean(vx > 3.0) == pytest.approx(0.2, abs=0.02)
        # bulk centered at zero
        bulk = vx[vx < 2.5]
        assert np.mean(bulk) == pytest.approx(0.0, abs=0.05)

    def test_rejects_bad_beam_fraction(self):
        with pytest.raises(ValueError):
            BumpOnTail(n_beam=0.0)
        with pytest.raises(ValueError):
            BumpOnTail(n_beam=1.5)

    def test_runs_in_simulation(self):
        from repro.core import OptimizationConfig, Simulation

        case = BumpOnTail()
        grid = GridSpec(32, 8, 0.0, 8 * np.pi, 0.0, 8 * np.pi)
        sim = Simulation(
            grid, case, 10_000, OptimizationConfig.fully_optimized(),
            dt=0.1, quiet=True, seed=None,
        )
        sim.run(10)
        assert sim.history.energy_drift() < 1e-2

    @pytest.mark.slow
    def test_instability_grows(self):
        """The gentle-beam free energy drives wave growth."""
        from repro.core import OptimizationConfig, Simulation
        from repro.core.diagnostics import growth_rate_fit

        case = BumpOnTail(n_beam=0.1, v_beam=4.0, vth=1.0, vth_beam=0.3, alpha=1e-3)
        grid = GridSpec(64, 4, 0.0, 8 * np.pi, 0.0, 8 * np.pi)
        sim = Simulation(
            grid, case, 100_000, OptimizationConfig.fully_optimized(),
            dt=0.1, quiet=True, seed=None,
        )
        h = sim.run(300).as_arrays()
        assert h["field_energy"][-50:].mean() > 3 * h["field_energy"][1:20].mean()
