"""Diagnostics tests: energies, mode amplitudes, rate fits."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    damping_rate_fit,
    field_energy,
    growth_rate_fit,
    kinetic_energy,
    log_envelope_peaks,
    mode_amplitude,
)


class TestEnergies:
    def test_field_energy_formula(self):
        ex = np.full((4, 4), 2.0)
        ey = np.zeros((4, 4))
        assert field_energy(ex, ey, cell_area=0.5) == pytest.approx(
            0.5 * 16 * 4.0 * 0.5
        )

    def test_field_energy_eps0(self):
        ex = np.ones((2, 2))
        assert field_energy(ex, ex, 1.0, eps0=3.0) == pytest.approx(
            3.0 * field_energy(ex, ex, 1.0)
        )

    def test_kinetic_energy_formula(self):
        vx = np.array([1.0, 2.0])
        vy = np.array([0.0, 2.0])
        assert kinetic_energy(vx, vy, weight=2.0, mass=3.0) == pytest.approx(
            0.5 * 3.0 * 2.0 * (1 + 4 + 4)
        )

    def test_energies_nonnegative(self, rng):
        assert field_energy(rng.normal(size=(8, 8)), rng.normal(size=(8, 8)), 0.1) >= 0
        assert kinetic_energy(rng.normal(size=100), rng.normal(size=100), 1.0) >= 0


class TestModeAmplitude:
    def test_pure_cosine_mode(self):
        n = 32
        x = np.arange(n)
        rho = 0.8 * np.cos(2 * np.pi * 3 * x / n)[:, None] * np.ones((1, n))
        assert mode_amplitude(rho, 3, 0) == pytest.approx(0.4, rel=1e-12)

    def test_orthogonal_mode_zero(self):
        n = 32
        x = np.arange(n)
        rho = np.cos(2 * np.pi * 3 * x / n)[:, None] * np.ones((1, n))
        assert mode_amplitude(rho, 2, 0) == pytest.approx(0.0, abs=1e-12)

    def test_constant_field_zero_in_nonzero_mode(self):
        assert mode_amplitude(np.ones((16, 16)), 1, 0) == 0.0


class TestEnvelopeAndFits:
    def _damped_series(self, gamma, omega=1.4, t_end=30.0, dt=0.05):
        t = np.arange(0.0, t_end, dt)
        # field energy of a damped oscillation ~ e^{2 gamma t} cos^2
        e = np.exp(2 * gamma * t) * np.cos(omega * t) ** 2 + 1e-30
        return t, e

    def test_log_envelope_peaks_finds_maxima(self):
        t, e = self._damped_series(-0.1)
        tp, logp = log_envelope_peaks(e, t)
        assert len(tp) >= 10
        # peaks spaced by pi/omega
        np.testing.assert_allclose(np.diff(tp), np.pi / 1.4, atol=0.06)

    def test_damping_rate_recovered(self):
        t, e = self._damped_series(-0.153)
        rate = damping_rate_fit(e, t)
        assert rate == pytest.approx(-0.153, abs=0.005)

    def test_damping_rate_window(self):
        t, e = self._damped_series(-0.2)
        rate = damping_rate_fit(e, t, t_min=5.0, t_max=20.0)
        assert rate == pytest.approx(-0.2, abs=0.01)

    def test_growth_rate_recovered(self):
        t = np.arange(0.0, 20.0, 0.1)
        e = 1e-6 * np.exp(2 * 0.35 * t)
        assert growth_rate_fit(e, t) == pytest.approx(0.35, rel=1e-6)

    def test_growth_rate_window(self):
        t = np.arange(0.0, 30.0, 0.1)
        e = 1e-6 * np.exp(2 * 0.2 * np.minimum(t, 15.0))  # saturates
        g = growth_rate_fit(e, t, t_min=2.0, t_max=12.0)
        assert g == pytest.approx(0.2, rel=1e-6)

    def test_fit_errors_on_short_series(self):
        with pytest.raises(ValueError):
            log_envelope_peaks(np.array([1.0, 2.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            damping_rate_fit(np.ones(5), np.arange(5.0), t_min=100.0)
        with pytest.raises(ValueError):
            growth_rate_fit(np.ones(5), np.arange(5.0), t_min=100.0)
