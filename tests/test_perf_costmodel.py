"""Cost-model tests: the paper's qualitative claims as assertions.

These tests pin the *shape* of the model — who is faster than whom and
why — not absolute times.  Every assertion corresponds to a sentence
in §IV of the paper.
"""

import pytest

from repro.core import OptimizationConfig
from repro.perf.costmodel import LoopCostModel, LoopKind
from repro.perf.machine import MachineSpec


@pytest.fixture
def model():
    return LoopCostModel(MachineSpec.haswell())


def loop_ns(model, kind, cfg, misses=None):
    return model.loop_costs(kind, cfg, misses).ns_per_particle(model.machine)


OPT = OptimizationConfig.fully_optimized()


class TestUpdateXVariants:
    def test_bitwise_beats_modulo(self, model):
        # §IV-C3: 31% improvement from removing the floor() call
        t_mod = loop_ns(model, LoopKind.UPDATE_X, OPT.with_(position_update="modulo"))
        t_bit = loop_ns(model, LoopKind.UPDATE_X, OPT)
        assert t_bit < t_mod
        assert (t_mod - t_bit) / t_mod > 0.15

    def test_modulo_beats_branch(self, model):
        # §IV-C2: removing the `if` enables vectorization
        t_branch = loop_ns(model, LoopKind.UPDATE_X, OPT.with_(position_update="branch"))
        t_mod = loop_ns(model, LoopKind.UPDATE_X, OPT.with_(position_update="modulo"))
        assert t_mod < t_branch

    def test_branch_cost_grows_with_escape_rate(self):
        m = MachineSpec.haswell()
        calm = LoopCostModel(m, p_escape=0.001)
        wild = LoopCostModel(m, p_escape=0.3)
        cfg = OPT.with_(position_update="branch")
        assert loop_ns(wild, LoopKind.UPDATE_X, cfg) > loop_ns(calm, LoopKind.UPDATE_X, cfg)

    def test_hilbert_catastrophic_on_update_x(self, model):
        # Table III: 133 s vs ~15 s — the Hilbert encode is serial
        t_h = loop_ns(model, LoopKind.UPDATE_X, OPT.with_(ordering="hilbert"))
        t_m = loop_ns(model, LoopKind.UPDATE_X, OPT)
        assert t_h > 4 * t_m

    def test_row_major_cheapest_update_x(self, model):
        # Table III: 12.8 (row) < 15.3 (morton) — no stored coords, 1-op encode
        t_r = loop_ns(model, LoopKind.UPDATE_X, OPT.with_(ordering="row-major"))
        t_m = loop_ns(model, LoopKind.UPDATE_X, OPT)
        assert t_r < t_m

    def test_unknown_ordering_raises(self, model):
        with pytest.raises(KeyError):
            model.loop_costs(LoopKind.UPDATE_X, OPT.with_(ordering="column-major", ordering_kwargs={}).with_(ordering="weird"))


class TestLayoutEffects:
    def test_soa_beats_aos_everywhere(self, model):
        for kind in LoopKind:
            t_soa = loop_ns(model, kind, OPT)
            t_aos = loop_ns(model, kind, OPT.with_(particle_layout="aos"))
            assert t_soa < t_aos, kind

    def test_redundant_accumulate_beats_standard(self, model):
        # Fig. 2 / §IV-B: the contiguous rows vectorize, the scatter
        # does not (15% gain with Intel on top of layout effects)
        t_red = loop_ns(model, LoopKind.ACCUMULATE, OPT)
        t_std = loop_ns(model, LoopKind.ACCUMULATE, OPT.with_(field_layout="standard", ordering="row-major"))
        assert t_red < t_std

    def test_redundant_update_v_close_to_standard(self, model):
        # Table III: 2d standard 30.6 vs redundant row-major 32.3 —
        # within ~10% of each other
        t_red = loop_ns(model, LoopKind.UPDATE_V, OPT.with_(ordering="row-major"))
        t_std = loop_ns(
            model, LoopKind.UPDATE_V,
            OPT.with_(field_layout="standard", ordering="row-major"),
        )
        assert abs(t_red - t_std) / t_std < 0.25

    def test_split_beats_fused_when_vectorizable(self, model):
        t_split = loop_ns(model, LoopKind.UPDATE_V, OPT)
        t_fused = loop_ns(model, LoopKind.UPDATE_V, OPT.with_(loop_mode="fused"))
        assert t_split < t_fused

    def test_hoisting_saves_multiplies(self, model):
        for kind in (LoopKind.UPDATE_V, LoopKind.UPDATE_X):
            t_on = loop_ns(model, kind, OPT)
            t_off = loop_ns(model, kind, OPT.with_(hoisting=False))
            assert t_on < t_off, kind


class TestStallTerm:
    def test_misses_add_stall(self, model):
        base = model.loop_costs(LoopKind.UPDATE_V, OPT)
        with_misses = model.loop_costs(
            LoopKind.UPDATE_V, OPT, {"L1": 1.0, "L2": 0.5, "L3": 0.1}
        )
        assert with_misses.stall_cycles > 0
        assert base.stall_cycles == 0.0
        assert with_misses.cycles_per_particle > base.cycles_per_particle

    def test_stall_linear_in_misses(self, model):
        one = model.loop_costs(LoopKind.UPDATE_V, OPT, {"L2": 1.0})
        two = model.loop_costs(LoopKind.UPDATE_V, OPT, {"L2": 2.0})
        assert two.stall_cycles == pytest.approx(2 * one.stall_cycles)

    def test_overlap_derates(self):
        m = MachineSpec.haswell()
        exposed = LoopCostModel(m, stall_overlap=1.0)
        hidden = LoopCostModel(m, stall_overlap=0.1)
        se = exposed.loop_costs(LoopKind.UPDATE_V, OPT, {"L3": 1.0}).stall_cycles
        sh = hidden.loop_costs(LoopKind.UPDATE_V, OPT, {"L3": 1.0}).stall_cycles
        assert se == pytest.approx(10 * sh)

    def test_unknown_level_raises(self, model):
        with pytest.raises(KeyError):
            model.loop_costs(LoopKind.UPDATE_V, OPT, {"L9": 1.0})


class TestIterationAndSort:
    def test_iteration_breakdown_keys(self, model):
        t = model.iteration_seconds(OPT, 10_000)
        assert set(t) == {"update_v", "update_x", "accumulate", "sort", "total"}
        assert t["total"] == pytest.approx(
            t["update_v"] + t["update_x"] + t["accumulate"] + t["sort"]
        )

    def test_sort_amortized_by_period(self, model):
        t20 = model.iteration_seconds(OPT.with_(sort_period=20), 10_000)["sort"]
        t40 = model.iteration_seconds(OPT.with_(sort_period=40), 10_000)["sort"]
        assert t20 == pytest.approx(2 * t40)

    def test_sort_disabled(self, model):
        assert model.iteration_seconds(OPT.with_(sort_period=0), 1000)["sort"] == 0.0

    def test_in_place_sort_slower(self, model):
        # §V-B1: out-of-place measured twice as fast
        oop = model.sort_seconds_per_call(10_000, OPT)
        inp = model.sort_seconds_per_call(10_000, OPT.with_(sort_variant="in-place"))
        assert inp > 1.5 * oop

    def test_times_scale_linearly_with_n(self, model):
        t1 = model.iteration_seconds(OPT, 1000)["total"]
        t2 = model.iteration_seconds(OPT, 2000)["total"]
        assert t2 == pytest.approx(2 * t1, rel=1e-9)


class TestTable4Monotonicity:
    def test_cumulative_stack_non_increasing_with_stalls(self, model):
        """Walking Table IV with representative miss data must not
        increase total time at any step (the paper's accumulated gains
        are monotone)."""
        # per-particle misses in the ratios the scaled cache simulator
        # measures (see benchmarks/bench_table2): row-major ~2x the
        # space-filling curves at L2/L3, fused mode ~1.5x split
        def misses_for(cfg):
            bad = cfg.field_layout == "standard" or cfg.ordering == "row-major"
            scale = 1.5 if cfg.loop_mode == "fused" else 1.0
            l2 = (0.85 if bad else 0.46) * scale
            l3 = (0.55 if bad else 0.29) * scale
            return {
                LoopKind.UPDATE_V: {"L2": l2 / 2, "L3": l3 / 2},
                LoopKind.UPDATE_X: {},
                LoopKind.ACCUMULATE: {"L2": l2 / 2, "L3": l3 / 2},
            }

        totals = []
        for label, cfg in OptimizationConfig.table4_stack():
            t = model.iteration_seconds(cfg, 1_000_000, misses_for(cfg))
            totals.append((label, t["total"]))
        for (la, ta), (lb, tb) in zip(totals, totals[1:]):
            assert tb <= ta * 1.02, f"{lb} regressed vs {la}"
        # and the full stack wins big overall (paper: 42.8%)
        assert totals[-1][1] < 0.75 * totals[0][1]

    def test_throughput_exposed(self, model):
        c = model.loop_costs(LoopKind.UPDATE_X, OPT)
        assert c.throughput > MachineSpec.haswell().scalar_ipc
        c2 = model.loop_costs(LoopKind.UPDATE_X, OPT.with_(position_update="branch"))
        assert c2.throughput == MachineSpec.haswell().scalar_ipc
