"""Kernel tests: vectorized kernels vs the scalar reference oracle."""

import numpy as np
import pytest

from repro.core.kernels import (
    accumulate_redundant,
    accumulate_standard,
    interpolate_redundant,
    interpolate_standard,
    push_positions_bitwise,
    push_positions_branch,
    push_positions_modulo,
    update_velocities,
    _axis_bitwise,
    _axis_branch,
    _axis_modulo,
)
from repro.core.reference import (
    accumulate_redundant_ref,
    accumulate_standard_ref,
    interpolate_redundant_ref,
    interpolate_standard_ref,
    push_axis_ref,
)
from repro.curves import get_ordering
from repro.particles import make_storage
from tests.conftest import random_particle_arrays

NCX = NCY = 16


class TestAccumulateStandard:
    def test_matches_reference(self, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 200, NCX, NCY)
        rho = np.zeros((NCX, NCY))
        ref = np.zeros((NCX, NCY))
        accumulate_standard(rho, ix, iy, dx, dy, charge=0.7)
        accumulate_standard_ref(ref, ix, iy, dx, dy, charge=0.7)
        np.testing.assert_allclose(rho, ref, atol=1e-12)

    def test_charge_conservation(self, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 500, NCX, NCY)
        rho = np.zeros((NCX, NCY))
        accumulate_standard(rho, ix, iy, dx, dy, charge=2.0)
        assert rho.sum() == pytest.approx(2.0 * 500, rel=1e-12)

    def test_periodic_wrap_on_edges(self):
        rho = np.zeros((NCX, NCY))
        accumulate_standard(
            rho,
            np.array([NCX - 1]),
            np.array([NCY - 1]),
            np.array([0.5]),
            np.array([0.5]),
        )
        assert rho[0, 0] == pytest.approx(0.25)
        assert rho[NCX - 1, 0] == pytest.approx(0.25)
        assert rho[0, NCY - 1] == pytest.approx(0.25)

    def test_accumulates_additively(self, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 100, NCX, NCY)
        rho = np.zeros((NCX, NCY))
        accumulate_standard(rho, ix, iy, dx, dy)
        once = rho.copy()
        accumulate_standard(rho, ix, iy, dx, dy)
        np.testing.assert_allclose(rho, 2 * once, atol=1e-12)


class TestAccumulateRedundant:
    def test_matches_reference(self, rng):
        o = get_ordering("morton", NCX, NCY)
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 200, NCX, NCY)
        icell = o.encode(ix, iy)
        rho = np.zeros((o.ncells_allocated, 4))
        ref = np.zeros((o.ncells_allocated, 4))
        accumulate_redundant(rho, icell, dx, dy, charge=1.3)
        accumulate_redundant_ref(ref, icell, dx, dy, charge=1.3)
        np.testing.assert_allclose(rho, ref, atol=1e-12)

    def test_charge_conservation(self, rng):
        o = get_ordering("l4d", NCX, NCY, size=8)
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 300, NCX, NCY)
        rho = np.zeros((o.ncells_allocated, 4))
        accumulate_redundant(rho, o.encode(ix, iy), dx, dy, charge=-1.0)
        assert rho.sum() == pytest.approx(-300.0, rel=1e-12)

    @pytest.mark.parametrize("name", ["row-major", "l4d", "morton", "hilbert"])
    def test_equivalent_to_standard_after_reduction(self, rng, name, small_grid):
        """The central layout invariant: redundant deposit + fold ==
        standard deposit, for every ordering."""
        from repro.grid import RedundantFields

        o = get_ordering(name, NCX, NCY)
        fields = RedundantFields(small_grid, o)
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 400, NCX, NCY)
        accumulate_redundant(fields.rho_1d, o.encode(ix, iy), dx, dy, charge=0.5)
        std = np.zeros((NCX, NCY))
        accumulate_standard(std, ix, iy, dx, dy, charge=0.5)
        np.testing.assert_allclose(fields.reduce_rho_to_grid(), std, atol=1e-12)


class TestInterpolate:
    def test_standard_matches_reference(self, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 150, NCX, NCY)
        ex = rng.random((NCX, NCY))
        ey = rng.random((NCX, NCY))
        fx, fy = interpolate_standard(ex, ey, ix, iy, dx, dy)
        rx, ry = interpolate_standard_ref(ex, ey, ix, iy, dx, dy)
        np.testing.assert_allclose(fx, rx, atol=1e-12)
        np.testing.assert_allclose(fy, ry, atol=1e-12)

    def test_redundant_matches_reference(self, rng):
        o = get_ordering("morton", NCX, NCY)
        e_1d = rng.random((o.ncells_allocated, 8))
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 150, NCX, NCY)
        icell = o.encode(ix, iy)
        fx, fy = interpolate_redundant(e_1d, icell, dx, dy)
        rx, ry = interpolate_redundant_ref(e_1d, icell, dx, dy)
        np.testing.assert_allclose(fx, rx, atol=1e-12)
        np.testing.assert_allclose(fy, ry, atol=1e-12)

    def test_layouts_agree_on_same_field(self, rng, small_grid):
        """Standard and redundant interpolation of the same grid field
        must produce identical particle fields."""
        from repro.grid import RedundantFields

        o = get_ordering("l4d", NCX, NCY, size=4)
        fields = RedundantFields(small_grid, o)
        ex = rng.random((NCX, NCY))
        ey = rng.random((NCX, NCY))
        fields.load_field_from_grid(ex, ey)
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 300, NCX, NCY)
        fx1, fy1 = interpolate_standard(ex, ey, ix, iy, dx, dy)
        fx2, fy2 = interpolate_redundant(fields.e_1d, o.encode(ix, iy), dx, dy)
        np.testing.assert_allclose(fx1, fx2, atol=1e-12)
        np.testing.assert_allclose(fy1, fy2, atol=1e-12)

    def test_interpolation_exact_at_nodes(self, rng):
        ex = rng.random((NCX, NCY))
        ey = rng.random((NCX, NCY))
        ix = np.array([3, 7])
        iy = np.array([2, 9])
        zero = np.zeros(2)
        fx, fy = interpolate_standard(ex, ey, ix, iy, zero, zero)
        np.testing.assert_allclose(fx, ex[ix, iy])
        np.testing.assert_allclose(fy, ey[ix, iy])

    def test_interpolation_linear_in_offset(self, rng):
        # along a cell edge the interpolant is linear
        ex = rng.random((NCX, NCY))
        ey = rng.random((NCX, NCY))
        iy = np.zeros(3, dtype=int)
        ix = np.zeros(3, dtype=int)
        f0, _ = interpolate_standard(ex, ey, ix[:1], iy[:1], np.array([0.0]), np.array([0.0]))
        f1, _ = interpolate_standard(ex, ey, ix[:1], iy[:1], np.array([1.0]), np.array([0.0]))
        fh, _ = interpolate_standard(ex, ey, ix[:1], iy[:1], np.array([0.5]), np.array([0.0]))
        assert fh[0] == pytest.approx(0.5 * (f0[0] + f1[0]))


class TestUpdateVelocities:
    def test_unit_coef_inplace_add(self, rng):
        vx = rng.normal(size=10)
        vy = rng.normal(size=10)
        ex = rng.normal(size=10)
        ey = rng.normal(size=10)
        vx0, vy0 = vx.copy(), vy.copy()
        update_velocities(vx, vy, ex, ey)
        np.testing.assert_allclose(vx, vx0 + ex)
        np.testing.assert_allclose(vy, vy0 + ey)

    def test_scaled_coef(self, rng):
        vx = np.zeros(5)
        vy = np.zeros(5)
        ex = np.ones(5)
        ey = np.ones(5)
        update_velocities(vx, vy, ex, ey, -0.5, 0.25)
        np.testing.assert_allclose(vx, -0.5)
        np.testing.assert_allclose(vy, 0.25)


class TestAxisWraps:
    """The three §IV-C periodic-wrap formulations must agree physically."""

    @pytest.mark.parametrize("axis_fn", [_axis_branch, _axis_modulo, _axis_bitwise])
    def test_position_equivalence_vs_reference(self, rng, axis_fn):
        nc = 16
        x = rng.uniform(-40, 56, 5000)
        i, d = axis_fn(x, nc)
        for k in range(0, 5000, 97):
            ri, rd = push_axis_ref(float(x[k]), nc)
            # same physical position modulo the box (offset may be the
            # 1.0-boundary representation of the next cell)
            pos = (int(i[k]) + float(d[k])) % nc
            rpos = (ri + rd) % nc
            assert pos == pytest.approx(rpos, abs=1e-9)

    @pytest.mark.parametrize("axis_fn", [_axis_branch, _axis_modulo, _axis_bitwise])
    def test_indices_in_range(self, rng, axis_fn):
        i, d = axis_fn(rng.uniform(-100, 100, 10_000), 32)
        assert i.min() >= 0 and i.max() < 32
        assert d.min() >= 0.0 and d.max() <= 1.0

    def test_bitwise_requires_power_of_two(self):
        with pytest.raises(ValueError):
            _axis_bitwise(np.array([1.5]), 12)

    def test_inside_particles_unchanged(self, rng):
        x = rng.uniform(0, 16, 1000)
        for fn in (_axis_branch, _axis_modulo, _axis_bitwise):
            i, d = fn(x, 16)
            np.testing.assert_allclose(i + d, x, atol=1e-12, err_msg=fn.__name__)

    def test_exact_negative_integer(self):
        # x = -2.0: all variants must land at physical position 14
        for fn in (_axis_branch, _axis_modulo, _axis_bitwise):
            i, d = fn(np.array([-2.0]), 16)
            assert (float(i[0]) + float(d[0])) % 16 == pytest.approx(14.0), fn.__name__


@pytest.mark.parametrize(
    "push", [push_positions_branch, push_positions_modulo, push_positions_bitwise]
)
@pytest.mark.parametrize("layout", ["soa", "aos"])
class TestPushPositions:
    def _make(self, rng, layout, ordering, n=400):
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, n, NCX, NCY)
        s = make_storage(layout, n, store_coords=True)
        s.set_state(ordering.encode(ix, iy), dx, dy, vx, vy, ix, iy)
        return s

    def test_consistency_icell_coords(self, rng, push, layout):
        o = get_ordering("morton", NCX, NCY)
        s = self._make(rng, layout, o)
        push(s, NCX, NCY, o)
        np.testing.assert_array_equal(
            np.asarray(s.icell), o.encode(np.asarray(s.ix), np.asarray(s.iy))
        )

    def test_displacement_correct(self, rng, push, layout):
        o = get_ordering("row-major", NCX, NCY)
        s = self._make(rng, layout, o)
        x_before = np.asarray(s.ix) + np.asarray(s.dx)
        v = np.asarray(s.vx).copy()
        push(s, NCX, NCY, o)
        x_after = np.asarray(s.ix) + np.asarray(s.dx)
        wrapped = np.mod(x_after - x_before - v + NCX / 2, NCX) - NCX / 2
        np.testing.assert_allclose(wrapped, 0.0, atol=1e-9)

    def test_velocity_scaling(self, rng, push, layout):
        o = get_ordering("row-major", NCX, NCY)
        s = self._make(rng, layout, o)
        x_before = np.asarray(s.ix) + np.asarray(s.dx)
        v = np.asarray(s.vx).copy()
        push(s, NCX, NCY, o, scale_x=0.5, scale_y=0.5)
        x_after = np.asarray(s.ix) + np.asarray(s.dx)
        wrapped = np.mod(x_after - x_before - 0.5 * v + NCX / 2, NCX) - NCX / 2
        np.testing.assert_allclose(wrapped, 0.0, atol=1e-9)

    def test_without_stored_coords(self, rng, push, layout):
        o = get_ordering("row-major", NCX, NCY)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, 200, NCX, NCY)
        s = make_storage(layout, 200, store_coords=False)
        s.set_state(o.encode(ix, iy), dx, dy, vx, vy)
        push(s, NCX, NCY, o)
        jx, jy = o.decode(np.asarray(s.icell))
        assert jx.min() >= 0 and jx.max() < NCX


class TestPushVariantsAgree:
    """branch / modulo / bitwise must produce the same physical state."""

    @pytest.mark.parametrize("ordering_name", ["row-major", "morton"])
    def test_all_variants_same_physical_positions(self, rng, ordering_name):
        o = get_ordering(ordering_name, NCX, NCY)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, 1000, NCX, NCY)
        vx *= 10  # multi-cell moves, both directions
        results = []
        for push in (push_positions_branch, push_positions_modulo, push_positions_bitwise):
            s = make_storage("soa", 1000, store_coords=True)
            s.set_state(o.encode(ix, iy), dx, dy, vx, vy, ix, iy)
            push(s, NCX, NCY, o)
            results.append(
                (np.asarray(s.ix) + np.asarray(s.dx)) % NCX
            )
        np.testing.assert_allclose(results[0], results[1], atol=1e-9)
        np.testing.assert_allclose(results[0] % NCX, results[2] % NCX, atol=1e-9)
