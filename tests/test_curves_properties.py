"""Property-based tests (hypothesis) for the space-filling curves."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.curves import (
    L4DOrdering,
    get_ordering,
    hilbert_decode_2d,
    hilbert_encode_2d,
    morton_decode_2d,
    morton_encode_2d,
)

pow2 = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128])
pow2_small = st.sampled_from([2, 4, 8, 16, 32])


@st.composite
def grid_and_coords(draw, names):
    name = draw(st.sampled_from(names))
    ncx = draw(pow2_small)
    ncy = draw(pow2_small)
    n = draw(st.integers(1, 64))
    ix = draw(
        st.lists(st.integers(0, ncx - 1), min_size=n, max_size=n).map(np.array)
    )
    iy = draw(
        st.lists(st.integers(0, ncy - 1), min_size=n, max_size=n).map(np.array)
    )
    return name, ncx, ncy, ix, iy


@given(grid_and_coords(["row-major", "column-major", "l4d", "morton", "hilbert"]))
@settings(max_examples=80, deadline=None)
def test_decode_encode_roundtrip(case):
    name, ncx, ncy, ix, iy = case
    o = get_ordering(name, ncx, ncy)
    jx, jy = o.decode(o.encode(ix, iy))
    np.testing.assert_array_equal(ix, jx)
    np.testing.assert_array_equal(iy, jy)


@given(grid_and_coords(["row-major", "column-major", "l4d", "morton", "hilbert"]))
@settings(max_examples=80, deadline=None)
def test_encode_in_allocated_range(case):
    name, ncx, ncy, ix, iy = case
    o = get_ordering(name, ncx, ncy)
    icell = np.asarray(o.encode(ix, iy))
    assert icell.min() >= 0
    assert icell.max() < o.ncells_allocated


@given(
    ncx=pow2_small,
    ncy=pow2_small,
    size=st.integers(1, 16),
)
@settings(max_examples=60, deadline=None)
def test_l4d_injective_any_tile_size(ncx, ncy, size):
    o = L4DOrdering(ncx, ncy, size=size)
    m = o.index_map()
    assert len(np.unique(m)) == ncx * ncy
    assert m.max() < o.ncells_allocated


@given(
    ix=st.integers(0, (1 << 16) - 1),
    iy=st.integers(0, (1 << 16) - 1),
)
@settings(max_examples=200, deadline=None)
def test_morton_roundtrip_full_16bit_range(ix, iy):
    jx, jy = morton_decode_2d(morton_encode_2d(ix, iy))
    assert int(jx) == ix and int(jy) == iy


@given(
    ix=st.integers(0, (1 << 16) - 1),
    iy=st.integers(0, (1 << 16) - 1),
)
@settings(max_examples=200, deadline=None)
def test_morton_monotone_in_blocks(ix, iy):
    # clearing the low bit of iy can only decrease the code
    code = int(morton_encode_2d(ix, iy))
    code2 = int(morton_encode_2d(ix, iy & ~1))
    assert code2 <= code


@given(order=st.integers(1, 8), d=st.integers(0, 2**16 - 1))
@settings(max_examples=200, deadline=None)
def test_hilbert_roundtrip_by_index(order, d):
    d = d % (1 << (2 * order))
    x, y = hilbert_decode_2d(order, np.array([d]))
    d2 = hilbert_encode_2d(order, x, y)
    assert int(d2[0]) == d


@given(order=st.integers(1, 6), d=st.integers(0, 2**12 - 2))
@settings(max_examples=150, deadline=None)
def test_hilbert_adjacency(order, d):
    side = 1 << order
    d = d % (side * side - 1)
    x, y = hilbert_decode_2d(order, np.array([d, d + 1]))
    manhattan = abs(int(x[1]) - int(x[0])) + abs(int(y[1]) - int(y[0]))
    assert manhattan == 1
