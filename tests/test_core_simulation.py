"""Simulation façade tests: history recording, derived series."""

import numpy as np
import pytest

from repro.core import OptimizationConfig, Simulation
from repro.grid import GridSpec
from repro.particles import LandauDamping


@pytest.fixture
def sim():
    grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
    return Simulation(
        grid,
        LandauDamping(alpha=0.05),
        3000,
        OptimizationConfig.fully_optimized(),
        dt=0.1,
        quiet=True,
        seed=None,
    )


class TestHistory:
    def test_initial_state_recorded(self, sim):
        assert len(sim.history.times) == 1
        assert sim.history.times[0] == 0.0
        assert sim.history.field_energy[0] > 0

    def test_run_appends_per_step(self, sim):
        sim.run(5)
        assert len(sim.history.times) == 6
        np.testing.assert_allclose(np.diff(sim.history.times), 0.1)

    def test_as_arrays_keys_and_lengths(self, sim):
        sim.run(3)
        arr = sim.history.as_arrays()
        assert set(arr) == {
            "times", "field_energy", "kinetic_energy", "mode_amplitude", "total_energy",
        }
        assert all(len(v) == 4 for v in arr.values())

    def test_total_energy_sum(self, sim):
        sim.run(2)
        h = sim.history
        np.testing.assert_allclose(
            h.total_energy,
            np.asarray(h.field_energy) + np.asarray(h.kinetic_energy),
        )

    def test_energy_drift_small(self, sim):
        sim.run(20)
        assert sim.history.energy_drift() < 5e-3

    def test_mode_amplitude_positive_initially(self, sim):
        # the perturbed mode is present at t=0
        assert sim.history.mode_amplitude[0] > 1e-4

    def test_run_returns_history(self, sim):
        h = sim.run(1)
        assert h is sim.history


class TestAccessors:
    def test_particles_and_grid_proxies(self, sim):
        assert sim.particles.n == 3000
        assert sim.grid.ncx == 16
        assert sim.timings.steps == 0

    def test_default_config(self):
        grid = GridSpec(16, 16, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        s = Simulation(grid, LandauDamping(), 100, quiet=True, seed=None)
        assert s.config == OptimizationConfig()
