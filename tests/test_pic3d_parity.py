"""3D feature-parity acceptance tests (the tentpole guarantees).

The 3D port's acceptance bar, enforced directly:

* the fused loop path is **bitwise identical** to the split path at
  every population size — including populations spanning many chunks
  (the 3D fused-chunked loop defers one whole-grid deposit past the
  chunk loop, so chunking is purely elementwise);
* the ``numpy-mp`` cell-ownership deposit is **bitwise identical** to
  the serial deposit at both 2 and 4 workers;
* the tiled density-aware deposit is bitwise at any block size;
* the differential-verify machinery covers 3D: the sampler emits 3D
  scenarios, the runner's 3D promise matrix pins the combos above, and
  the bisector localizes an injected 3D perturbation.
"""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.pic3d import GridSpec3D, PICStepper3D, TwoStream3D
from repro.pic3d.stepper3d import PARTICLE_KEYS_3D
from repro.verify.configspace import Scenario, ScenarioSampler
from repro.verify.differ import DifferentialRunner, Perturbation


def _grid(ncx=8, ncy=4, ncz=4):
    return GridSpec3D(ncx, ncy, ncz,
                      xmax=4 * np.pi, ymax=2 * np.pi, zmax=2 * np.pi)


def _config(**overrides):
    params = dict(
        field_layout="redundant", ordering="morton", loop_mode="split",
        position_update="bitwise", hoisting=True, sort_period=3,
        backend="numpy",
    )
    params.update(overrides)
    return OptimizationConfig(**params)


def _assert_state_equal(a, b, context=""):
    for key in PARTICLE_KEYS_3D:
        assert np.asarray(a.particles[key]).tobytes() == \
            np.asarray(b.particles[key]).tobytes(), (context, key)
    for name in ("rho_grid", "ex_grid", "ey_grid", "ez_grid"):
        assert np.asarray(getattr(a, name)).tobytes() == \
            np.asarray(getattr(b, name)).tobytes(), (context, name)


def _run_pair(cfg_a, cfg_b, n=1200, steps=6, grid=None):
    grid = grid or _grid()
    a = PICStepper3D(grid, TwoStream3D(), n, dt=0.1, config=cfg_a)
    b = PICStepper3D(grid, TwoStream3D(), n, dt=0.1, config=cfg_b)
    try:
        for step in range(steps):
            a.step()
            b.step()
            _assert_state_equal(a, b, context=f"step {step}")
    finally:
        a.close()
        b.close()


class TestFusedSplitParity:
    def test_fused_bitwise_equals_split_single_chunk(self):
        _run_pair(_config(loop_mode="split"), _config(loop_mode="fused"))

    def test_fused_bitwise_equals_split_multi_chunk(self):
        """The strengthened 3D promise: bitwise at n >> chunk_size."""
        _run_pair(
            _config(loop_mode="split", chunk_size=128),
            _config(loop_mode="fused", chunk_size=128),
            n=1000,
        )

    @pytest.mark.parametrize("push", ["branch", "modulo", "bitwise"])
    def test_fused_parity_every_push_variant(self, push):
        _run_pair(
            _config(loop_mode="split", position_update=push),
            _config(loop_mode="fused", position_update=push, chunk_size=256),
            n=800, steps=4,
        )

    def test_loop_path_dispatch(self):
        grid = _grid()
        split = PICStepper3D(grid, TwoStream3D(), 100,
                             config=_config(loop_mode="split"))
        fused = PICStepper3D(grid, TwoStream3D(), 100,
                             config=_config(loop_mode="fused"))
        auto = PICStepper3D(grid, TwoStream3D(), 100,
                            config=_config(loop_mode="auto"))
        try:
            assert split._select_loop_path() == "split"
            assert fused._select_loop_path() in (
                "fused-backend", "fused-chunked"
            )
            assert auto._select_loop_path() == "split"
        finally:
            split.close()
            fused.close()
            auto.close()


class TestMpDepositParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_mp_deposit_bitwise_vs_serial(self, workers):
        """The acceptance bar: numpy-mp == serial at 2 and 4 workers."""
        _run_pair(
            _config(backend="numpy"),
            _config(backend="numpy-mp", workers=workers),
            n=1500, steps=5,
        )

    def test_mp_deposit_bitwise_curve_balanced_partition(self):
        _run_pair(
            _config(backend="numpy"),
            _config(backend="numpy-mp", workers=3,
                    partition="curve-balanced"),
            n=1000, steps=4,
        )


class TestTiledDepositParity:
    @pytest.mark.parametrize("block", [1, 4, 64])
    def test_tiled_bitwise_any_block_size(self, block):
        _run_pair(
            _config(block_size=0),
            _config(block_size=block),
            n=1000, steps=4,
        )

    def test_tiled_threshold_and_partition_flips_bitwise(self):
        _run_pair(
            _config(block_size=4, deposit_thresholds=(0.0, 0.0)),
            _config(block_size=16, deposit_thresholds=(1e30, 2e30),
                    partition="curve-balanced"),
            n=900, steps=4,
        )


def _scenario_3d(**overrides) -> Scenario:
    params = dict(
        index=0, ncx=8, ncy=4, n_particles=1200, n_steps=5,
        case_name="two-stream", ordering="morton", field_layout="redundant",
        loop_mode="split", position_update="bitwise", hoisting=True,
        sort_period=2, sort_variant="out-of-place", chunk_size=8192,
        seed=1, dims=3, ncz=4,
    )
    params.update(overrides)
    return Scenario(**params)


class TestDiffer3D:
    def test_sampler_emits_legal_3d_scenarios(self):
        samples = ScenarioSampler(seed=5).sample(40)
        three_d = [s for s in samples if s.dims == 3]
        assert three_d, "the dims axis must produce 3D scenarios"
        for s in three_d:
            grid = s.grid3d()
            assert grid.pow2
            assert s.field_layout == "redundant"
            assert s.hoisting is True
            assert s.case_name in ("landau", "two-stream")
            assert s.case3d() is not None
            assert "3d" in s.label()

    def test_3d_promise_matrix_pins_mp_at_2_and_4_workers(self):
        runner = DifferentialRunner(include_mp=True)
        combos = runner.combos(_scenario_3d())
        mp = [(c.workers, rel) for c, rel in combos if c.backend == "numpy-mp"]
        assert (2, "bitwise") in mp and (4, "bitwise") in mp

    def test_3d_fused_promised_bitwise_at_any_population(self):
        runner = DifferentialRunner(include_mp=False)
        for n in (100, 50_000):
            combos = dict(
                (c.backend + "/" + (c.loop_mode or ""), rel)
                for c, rel in runner.combos(_scenario_3d(n_particles=n))
            )
            assert combos["numpy/fused"] == "bitwise", n

    def test_3d_scenario_passes_promise_matrix(self):
        runner = DifferentialRunner(include_mp=False)
        report = runner.run_scenario(_scenario_3d())
        assert report.ok, report.describe()
        assert report.sort_permutation_ok is True

    def test_3d_bisection_localizes_injection(self):
        runner = DifferentialRunner(include_mp=False)
        report = runner.run_scenario(
            _scenario_3d(sort_period=0),
            perturbation=Perturbation(step=1, phase="accumulate",
                                      array="dz", factor=1.0 + 1e-9),
        )
        bad = [p for p in report.pairs if not p.ok]
        assert bad, "3D perturbation must be detected"
        assert all(p.divergence.step == 1 for p in bad)
        assert all(p.divergence.phase == "accumulate" for p in bad)

    @pytest.mark.verify_full
    def test_3d_promise_matrix_with_mp(self):
        runner = DifferentialRunner(include_mp=True)
        report = runner.run_scenario(_scenario_3d(n_particles=2000))
        assert report.ok, report.describe()
