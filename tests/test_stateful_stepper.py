"""Stateful property testing of the PIC stepper (hypothesis rule machine).

Drives a live stepper through arbitrary interleavings of steps, manual
sorts, checkpoint round-trips, and diagnostics reads, asserting the
structural invariants after every action:

* particle count and total charge never change (periodic box);
* offsets stay in [0, 1], cell indices stay valid and consistent with
  the stored coordinates;
* total energy stays within a loose physical envelope;
* a checkpoint round-trip is a no-op for the observable state.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.core import OptimizationConfig, PICStepper
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.grid import GridSpec
from repro.particles import LandauDamping

N_PARTICLES = 800


class SteppingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tmpdir = None

    @initialize(
        ordering=st.sampled_from(["row-major", "morton", "l4d"]),
        sort_period=st.sampled_from([0, 3, 10]),
        hoisting=st.booleans(),
    )
    def setup(self, ordering, sort_period, hoisting):
        cfg = OptimizationConfig.fully_optimized(ordering).with_(
            sort_period=sort_period, hoisting=hoisting
        )
        grid = GridSpec(16, 8, 0.0, 4 * np.pi, 0.0, 4 * np.pi)
        self.stepper = PICStepper(
            grid, cfg, case=LandauDamping(alpha=0.1),
            n_particles=N_PARTICLES, dt=0.1, quiet=True, seed=None,
        )
        self.initial_energy = self._total_energy()
        self.initial_charge = self.stepper.rho_grid.sum()

    # ------------------------------------------------------------------
    def _total_energy(self):
        from repro.core.diagnostics import field_energy, kinetic_energy

        st_ = self.stepper
        vx, vy = st_.physical_velocities()
        return field_energy(
            st_.ex_grid, st_.ey_grid, st_.grid.cell_area
        ) + kinetic_energy(vx, vy, st_.particles.weight)

    # ------------------------------------------------------------------
    @rule(n=st.integers(1, 5))
    def advance(self, n):
        self.stepper.run(n)

    @rule()
    def manual_sort(self):
        self.stepper._phase_sort()

    @rule()
    def checkpoint_roundtrip(self, tmp_path_factory=None):
        import tempfile
        import pathlib

        with tempfile.TemporaryDirectory() as d:
            path = pathlib.Path(d) / "state.npz"
            save_checkpoint(self.stepper, path)
            restored = load_checkpoint(path)
        np.testing.assert_array_equal(restored.ex_grid, self.stepper.ex_grid)
        self.stepper = restored

    @rule()
    def read_diagnostics(self):
        from repro.core.diagnostics import mode_amplitude

        amp = mode_amplitude(self.stepper.rho_grid, 1, 0)
        assert np.isfinite(amp) and amp >= 0

    # ------------------------------------------------------------------
    @invariant()
    def particle_count_fixed(self):
        if not hasattr(self, "stepper"):
            return
        assert self.stepper.particles.n == N_PARTICLES

    @invariant()
    def charge_conserved(self):
        if not hasattr(self, "stepper"):
            return
        np.testing.assert_allclose(
            self.stepper.rho_grid.sum(), self.initial_charge, rtol=1e-9
        )

    @invariant()
    def state_well_formed(self):
        if not hasattr(self, "stepper"):
            return
        p = self.stepper.particles
        dx = np.asarray(p.dx)
        dy = np.asarray(p.dy)
        assert dx.min() >= 0.0 and dx.max() <= 1.0
        assert dy.min() >= 0.0 and dy.max() <= 1.0
        icell = np.asarray(p.icell)
        assert icell.min() >= 0
        assert icell.max() < self.stepper.ordering.ncells_allocated
        if p.store_coords:
            np.testing.assert_array_equal(
                icell,
                self.stepper.ordering.encode(np.asarray(p.ix), np.asarray(p.iy)),
            )

    @invariant()
    def energy_in_envelope(self):
        if not hasattr(self, "stepper"):
            return
        e = self._total_energy()
        assert np.isfinite(e)
        assert abs(e - self.initial_energy) < 0.05 * self.initial_energy


TestSteppingMachine = SteppingMachine.TestCase
TestSteppingMachine.settings = settings(
    max_examples=10, stateful_step_count=12, deadline=None
)
