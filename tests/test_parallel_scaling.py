"""Scaling-series tests: the qualitative content of Figs. 7/9, Table VI."""

import pytest

from repro.core import OptimizationConfig
from repro.parallel.mpi import CollectiveCostModel
from repro.parallel.scaling import (
    strong_scaling_hybrid,
    strong_scaling_threads,
    weak_scaling_series,
)

CFG = OptimizationConfig.fully_optimized().with_(sort_period=50)
GRID_BYTES = 128 * 128 * 8


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def pure(self):
        cores = [2**k for k in range(14)]
        return weak_scaling_series(
            cores, 1_000_000, GRID_BYTES, 100, threads_per_rank=1, config=CFG
        )

    @pytest.fixture(scope="class")
    def hybrid(self):
        cores = [2**k for k in range(3, 14)]
        return weak_scaling_series(
            cores, 1_000_000, GRID_BYTES, 100, threads_per_rank=8, config=CFG
        )

    def test_comm_fraction_monotone(self, pure):
        fracs = [p.comm_fraction for p in pure]
        assert fracs == sorted(fracs)

    def test_pure_mpi_comm_explodes(self, pure):
        # Fig. 7: >50% of execution time at 8192 cores
        assert pure[-1].comm_fraction > 0.5
        assert pure[0].comm_fraction < 0.01

    def test_hybrid_beats_pure_at_same_cores(self, pure, hybrid):
        pure_by_cores = {p.cores: p for p in pure}
        for h in hybrid:
            p = pure_by_cores[h.cores]
            assert h.comm_seconds < p.comm_seconds, h.cores

    def test_hybrid_stays_moderate(self, hybrid):
        # Fig. 7: hybrid comm ~28% at 8192 cores
        assert hybrid[-1].comm_fraction < 0.5

    def test_compute_time_flat(self, pure):
        # weak scaling: per-rank compute is constant by construction
        c0 = pure[0].compute_seconds
        assert all(p.compute_seconds == pytest.approx(c0) for p in pure)

    def test_rank_accounting(self, hybrid):
        for h in hybrid:
            assert h.ranks * h.threads_per_rank == h.cores
            assert h.particles_per_rank == 8_000_000

    def test_rejects_indivisible_cores(self):
        with pytest.raises(ValueError):
            weak_scaling_series([4], 1000, GRID_BYTES, 10, threads_per_rank=8)


class TestStrongScalingHybrid:
    @pytest.fixture(scope="class")
    def points(self):
        return strong_scaling_hybrid(
            [1, 2, 4, 8, 16, 32, 64],
            800_000_000,
            256 * 256 * 8,
            100,
            config=OptimizationConfig.fully_optimized().with_(sort_period=20),
        )

    def test_near_ideal_at_small_node_counts(self, points):
        t1 = points[0].exec_seconds
        assert t1 / points[1].exec_seconds == pytest.approx(2.0, rel=0.05)
        assert t1 / points[2].exec_seconds == pytest.approx(4.0, rel=0.08)

    def test_speedup_degrades_at_scale(self, points):
        # Fig. 9: far from ideal at 64 nodes
        t1 = points[0].exec_seconds
        speedup64 = t1 / points[-1].exec_seconds
        assert speedup64 < 0.95 * 64

    def test_comm_fraction_grows(self, points):
        fracs = [p.comm_fraction for p in points]
        assert fracs == sorted(fracs)
        assert fracs[-1] > 0.1  # paper: 32% at 64 nodes

    def test_particles_divided(self, points):
        assert points[0].particles_per_rank == 400_000_000
        assert points[-1].particles_per_rank == 6_250_000


class TestStrongScalingThreads:
    def test_monotone_throughput(self):
        rows = strong_scaling_threads([1, 2, 4, 8], 1_000_000, 10, config=CFG)
        tps = [mps for _, mps in rows]
        assert tps == sorted(tps)

    def test_custom_comm_model_respected(self):
        cheap = CollectiveCostModel(latency_s=0.0, bandwidth_gbs=1e9, imbalance_coeff=0.0)
        pts = weak_scaling_series(
            [1, 1024], 1_000_000, GRID_BYTES, 100,
            comm_model=cheap, threads_per_rank=1, config=CFG,
        )
        assert pts[-1].comm_seconds == pytest.approx(0.0, abs=1e-6)
