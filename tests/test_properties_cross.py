"""Cross-module property-based tests (hypothesis): core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.kernels import (
    _axis_bitwise,
    _axis_branch,
    _axis_modulo,
    accumulate_redundant,
    accumulate_standard,
    corner_weights,
    interpolate_redundant,
)
from repro.curves import get_ordering
from repro.particles.sorting import (
    counting_sort_permutation,
    counting_sort_permutation_reference,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(
    dx=st.floats(0, 1, exclude_max=True),
    dy=st.floats(0, 1, exclude_max=True),
)
@settings(max_examples=200, deadline=None)
def test_corner_weights_partition_of_unity(dx, dy):
    w = corner_weights(np.array([dx]), np.array([dy]))
    assert abs(w.sum() - 1.0) < 1e-12
    assert w.min() >= 0.0


@given(
    x=finite_floats,
    nc_log=st.integers(1, 10),
)
@settings(max_examples=300, deadline=None)
def test_axis_wraps_agree_for_any_float(x, nc_log):
    nc = 1 << nc_log
    arr = np.array([x])
    positions = []
    for fn in (_axis_branch, _axis_modulo, _axis_bitwise):
        i, d = fn(arr, nc)
        assert 0 <= int(i[0]) < nc
        assert 0.0 <= float(d[0]) <= 1.0
        positions.append((float(i[0]) + float(d[0])) % nc)
    assert abs(positions[0] - positions[1]) % nc < 1e-6 or abs(
        abs(positions[0] - positions[1]) - nc
    ) < 1e-6
    assert abs(positions[0] - positions[2]) % nc < 1e-6 or abs(
        abs(positions[0] - positions[2]) - nc
    ) < 1e-6


@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 2**31 - 1),
    name=st.sampled_from(["row-major", "l4d", "morton", "hilbert"]),
)
@settings(max_examples=50, deadline=None)
def test_charge_conserved_any_ordering(n, seed, name):
    """sum(rho_1d) == charge * n for every layout and ordering."""
    rng = np.random.default_rng(seed)
    o = get_ordering(name, 16, 16)
    ix = rng.integers(0, 16, n)
    iy = rng.integers(0, 16, n)
    dx = rng.random(n)
    dy = rng.random(n)
    rho = np.zeros((o.ncells_allocated, 4))
    accumulate_redundant(rho, o.encode(ix, iy), dx, dy, charge=1.25)
    assert abs(rho.sum() - 1.25 * n) < 1e-9 * max(n, 1)


@given(
    n=st.integers(1, 100),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_standard_and_redundant_deposits_equal(n, seed):
    rng = np.random.default_rng(seed)
    from repro.grid import GridSpec, RedundantFields

    grid = GridSpec(8, 8)
    o = get_ordering("morton", 8, 8)
    fields = RedundantFields(grid, o)
    ix = rng.integers(0, 8, n)
    iy = rng.integers(0, 8, n)
    dx = rng.random(n)
    dy = rng.random(n)
    accumulate_redundant(fields.rho_1d, o.encode(ix, iy), dx, dy)
    std = np.zeros((8, 8))
    accumulate_standard(std, ix, iy, dx, dy)
    np.testing.assert_allclose(fields.reduce_rho_to_grid(), std, atol=1e-10)


@given(
    keys=st.lists(st.integers(0, 31), min_size=0, max_size=300),
)
@settings(max_examples=100, deadline=None)
def test_counting_sort_matches_reference(keys):
    keys = np.asarray(keys, dtype=np.int64)
    fast = counting_sort_permutation(keys, 32)
    ref = counting_sort_permutation_reference(keys, 32)
    np.testing.assert_array_equal(fast, ref)


@given(
    keys=st.lists(st.integers(0, 15), min_size=1, max_size=200),
    nthreads=st.integers(1, 8),
)
@settings(max_examples=100, deadline=None)
def test_parallel_sort_equals_serial(keys, nthreads):
    from repro.particles.sorting import parallel_counting_sort_permutation

    keys = np.asarray(keys, dtype=np.int64)
    serial = counting_sort_permutation(keys, 16)
    par, slices = parallel_counting_sort_permutation(keys, 16, nthreads)
    np.testing.assert_array_equal(par, serial)
    covered = sorted(i for sl in slices for i in range(sl.start, sl.stop))
    assert covered == list(range(len(keys)))


@given(
    n=st.integers(1, 60),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_interpolation_bounded_by_field_extrema(n, seed):
    """CiC interpolation is a convex combination: results stay within
    [min(E), max(E)]."""
    rng = np.random.default_rng(seed)
    o = get_ordering("row-major", 8, 8)
    from repro.grid import GridSpec, RedundantFields

    fields = RedundantFields(GridSpec(8, 8), o)
    ex = rng.normal(size=(8, 8))
    ey = rng.normal(size=(8, 8))
    fields.load_field_from_grid(ex, ey)
    ix = rng.integers(0, 8, n)
    iy = rng.integers(0, 8, n)
    fx, fy = interpolate_redundant(
        fields.e_1d, o.encode(ix, iy), rng.random(n), rng.random(n)
    )
    assert fx.min() >= ex.min() - 1e-12 and fx.max() <= ex.max() + 1e-12
    assert fy.min() >= ey.min() - 1e-12 and fy.max() <= ey.max() + 1e-12


@given(seed=st.integers(0, 2**31 - 1), nc_log=st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_cache_hit_on_immediate_reaccess(seed, nc_log):
    from repro.perf.cache import CacheHierarchy
    from repro.perf.machine import CacheLevelSpec

    rng = np.random.default_rng(seed)
    h = CacheHierarchy(
        (CacheLevelSpec("L1", 1 << (nc_log + 7), 64, 4, 1.0),), prefetch=False
    )
    addr = int(rng.integers(0, 1 << 20)) * 64
    h.simulate(np.array([addr]))
    r = h.simulate(np.array([addr]))
    assert r.misses_by_name()["L1"] == 0
