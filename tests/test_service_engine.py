"""Tests for the multi-job engine (`repro.service`).

Covers the satellite checklist of the service PR: submit/cancel,
priority ordering, preempt-then-resume bitwise equality with an
uninterrupted run, crashed-job isolation, and the ``/dev/shm`` leak
scan after engine shutdown.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.resilience.faultinject import FaultInjector
from repro.service import (
    JobClient,
    JobEngine,
    JobState,
    PICJob,
    UnknownJobError,
)

SHM_DIR = pathlib.Path("/dev/shm")


def shm_entries() -> set[str]:
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("psm_")}


def small_job(**overrides) -> PICJob:
    base = dict(case="landau", grid=(16, 16), n_particles=1500, steps=20,
                dt=0.05, backend="numpy", checkpoint_every=8)
    base.update(overrides)
    return PICJob(**base)


# ----------------------------------------------------------------------
# PICJob: validation and serialization
# ----------------------------------------------------------------------
class TestPICJob:
    def test_defaults_valid(self):
        job = PICJob()
        assert job.case == "landau" and job.steps == 100

    @pytest.mark.parametrize("bad", [
        dict(case="nope"),
        dict(ordering="zigzag"),
        dict(backend="gpu"),
        dict(steps=0),
        dict(n_particles=0),
        dict(dt=0.0),
        dict(checkpoint_every=0),
        dict(grid=(16,)),
        dict(domain=(0.0, 0.0, 0.0, 1.0)),
        dict(workers=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            PICJob(**bad)

    def test_dict_round_trip(self):
        job = small_job(priority=3, seed=7, alpha=0.1,
                        domain=(0.0, 1.0, 0.0, 2.0))
        assert PICJob.from_dict(job.as_dict()) == job

    def test_builders_match_cli_conventions(self):
        job = small_job(ordering="hilbert")
        cfg = job.make_config()
        assert cfg.ordering == "hilbert"
        assert cfg.position_update == "modulo"  # hilbert needs real coords
        assert cfg.backend == "numpy"
        grid = job.make_grid()
        assert (grid.ncx, grid.ncy) == (16, 16)

    def test_state_machine_predicates(self):
        assert JobState.QUEUED.runnable and not JobState.QUEUED.terminal
        assert JobState.PREEMPTED.runnable
        assert not JobState.RUNNING.terminal
        for s in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED):
            assert s.terminal and not s.runnable


# ----------------------------------------------------------------------
# Submit / result / status
# ----------------------------------------------------------------------
class TestSubmitResult:
    def test_two_jobs_complete(self):
        with JobEngine(max_workers=2) as engine:
            a = engine.submit(small_job())
            b = engine.submit(small_job(case="two-stream", steps=15))
            ra = engine.result(a, timeout=60)
            rb = engine.result(b, timeout=60)
        assert ra.ok and rb.ok
        assert ra.steps_done == 20 and rb.steps_done == 15
        # history: initial entry + one per step
        assert len(ra.history.times) == 21
        assert np.isfinite(ra.energy_drift())
        # per-job ledger carries the engine scheduling context
        assert ra.timings["engine"]["job_id"] == a
        assert ra.timings["engine"]["segments"] == 1
        assert ra.timings["cumulative"]["total"] > 0
        # supervisor accounting aggregated into the result
        assert ra.supervisor["checkpoints_written"] >= 1
        assert ra.supervisor["rollbacks"] == 0

    def test_engine_matches_plain_simulation(self):
        """A fault-free engine run is bitwise identical to Simulation.run."""
        job = small_job()
        with job.build_simulation() as ref:
            ref.run(job.steps)
            with JobEngine(max_workers=1) as engine:
                res = engine.result(engine.submit(job), timeout=60)
            assert np.array_equal(res.history.field_energy,
                                  ref.history.field_energy)
            assert np.array_equal(res.history.mode_amplitude,
                                  ref.history.mode_amplitude)

    def test_status_and_listing(self):
        with JobEngine(max_workers=1, autostart=False) as engine:
            a = engine.submit(small_job(priority=2))
            info = engine.status(a)
            assert info.state is JobState.QUEUED
            assert info.priority == 2 and info.steps_total == 20
            assert [i.job_id for i in engine.list_jobs()] == [a]
            with pytest.raises(UnknownJobError):
                engine.status("job-9999")

    def test_result_timeout(self):
        with JobEngine(max_workers=1, autostart=False) as engine:
            a = engine.submit(small_job())
            with pytest.raises(TimeoutError):
                engine.result(a, timeout=0.05)

    def test_submit_after_close_raises(self):
        engine = JobEngine(max_workers=1)
        engine.close()
        from repro.service import EngineClosedError

        with pytest.raises(EngineClosedError):
            engine.submit(small_job())

    def test_stats_counters(self):
        with JobEngine(max_workers=2) as engine:
            ids = engine.submit_many([small_job(), small_job(steps=10)])
            assert engine.join(timeout=60)
            stats = engine.stats
        assert stats.submitted == 2 and stats.succeeded == 2
        assert sorted(stats.completed_order) == sorted(ids)
        assert any(s["event"] == "submit" for s in stats.queue_depth)
        assert set(stats.per_job_phases) == set(ids)


# ----------------------------------------------------------------------
# Priority scheduling
# ----------------------------------------------------------------------
class TestPriority:
    def test_dispatch_order_by_priority_then_fifo(self):
        with JobEngine(max_workers=1, autostart=False) as engine:
            low = engine.submit(small_job(steps=5, priority=0))
            high = engine.submit(small_job(steps=5, priority=5))
            mid1 = engine.submit(small_job(steps=5, priority=1))
            mid2 = engine.submit(small_job(steps=5, priority=1))
            engine.start()
            assert engine.join(timeout=120)
            assert engine.stats.started_order == [high, mid1, mid2, low]

    def test_higher_priority_arrival_preempts(self):
        with JobEngine(max_workers=1) as engine:
            slow = engine.submit(small_job(steps=400, priority=0))
            # wait until the low-priority job is provably running
            stream = engine.stream(slow, timeout=60)
            for _ in range(3):
                next(stream)
            urgent = engine.submit(small_job(steps=5, priority=10))
            r_urgent = engine.result(urgent, timeout=120)
            r_slow = engine.result(slow, timeout=120)
        assert r_urgent.ok and r_slow.ok
        assert r_slow.preemptions >= 1 and r_slow.segments >= 2
        order = engine.stats.completed_order
        assert order.index(urgent) < order.index(slow)

    def test_equal_priority_never_preempts(self):
        with JobEngine(max_workers=1) as engine:
            first = engine.submit(small_job(steps=60, priority=3))
            stream = engine.stream(first, timeout=60)
            next(stream)
            second = engine.submit(small_job(steps=5, priority=3))
            r1 = engine.result(first, timeout=120)
            engine.result(second, timeout=120)
        assert r1.preemptions == 0 and r1.segments == 1


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancel:
    def test_cancel_queued_job_never_runs(self):
        with JobEngine(max_workers=1, autostart=False) as engine:
            a = engine.submit(small_job())
            assert engine.cancel(a)
            engine.start()
            res = engine.result(a, timeout=30)
        assert res.state is JobState.CANCELLED
        assert res.steps_done == 0 and res.segments == 0
        assert not engine.cancel(a)  # terminal: no-op

    def test_cancel_running_job_keeps_partial_history(self):
        with JobEngine(max_workers=1) as engine:
            a = engine.submit(small_job(steps=400))
            stream = engine.stream(a, timeout=60)
            for _ in range(3):
                next(stream)
            assert engine.cancel(a)
            res = engine.result(a, timeout=60)
        assert res.state is JobState.CANCELLED
        assert 3 <= res.steps_done < 400
        assert len(res.history.times) == res.steps_done + 1

    def test_cancelled_job_does_not_block_others(self):
        with JobEngine(max_workers=1, autostart=False) as engine:
            a = engine.submit(small_job(steps=400))
            b = engine.submit(small_job(steps=10))
            engine.cancel(a)
            engine.start()
            rb = engine.result(b, timeout=60)
        assert rb.ok


# ----------------------------------------------------------------------
# Preemption / resume
# ----------------------------------------------------------------------
class TestPreemptResume:
    def test_preempt_then_resume_bitwise_equals_uninterrupted(self):
        """The headline guarantee: park/restore costs zero ULPs.

        The same job config runs once uninterrupted and once through
        the engine with two forced preemptions; the final particle
        phase space and grids must be bitwise identical (numpy
        backend), and the diagnostic history must match entry for
        entry.
        """
        job = small_job(steps=30, checkpoint_every=7)
        with job.build_simulation() as ref:
            ref.run(job.steps)
            with JobEngine(max_workers=1) as engine:
                jid = engine.submit(job)
                seen = 0
                for _ in engine.stream(jid, timeout=60):
                    seen += 1
                    if seen in (6, 14):  # park twice, mid-flight
                        engine.preempt(jid)
                res = engine.result(jid, timeout=120)

                assert res.ok
                assert res.segments >= 3 and res.preemptions >= 2
                assert np.array_equal(res.history.field_energy,
                                      ref.history.field_energy)
                assert np.array_equal(res.history.kinetic_energy,
                                      ref.history.kinetic_energy)

                # entry-for-entry identical series, same length
                assert len(res.history.times) == len(ref.history.times)

    def test_preempted_final_particles_bitwise(self, tmp_path):
        """Directly compare final particle arrays, not just the series.

        Exercises the exact park/restore path the engine uses
        (checkpoint at a step boundary, ``Simulation.from_stepper``
        with the accumulated history, run to the same target) against
        an uninterrupted run of the same job.
        """
        job = small_job(steps=24, checkpoint_every=5, case="two-stream")

        with job.build_simulation() as ref:
            ref.run(job.steps)
            ref_state = {
                "icell": np.array(ref.particles.icell),
                "dx": np.array(ref.particles.dx),
                "dy": np.array(ref.particles.dy),
                "vx": np.array(ref.particles.vx),
                "vy": np.array(ref.particles.vy),
                "rho": np.array(ref.stepper.rho_grid),
                "ex": np.array(ref.stepper.ex_grid),
            }

        from repro.core.checkpoint import load_checkpoint, save_checkpoint
        from repro.core.simulation import Simulation

        with job.build_simulation() as sim:
            sim.run(10)
            park = save_checkpoint(sim.stepper, tmp_path / "park.npz")
            hist = sim.history
        stepper = load_checkpoint(park, job.make_config())
        resumed = Simulation.from_stepper(stepper, history=hist)
        try:
            resumed.run(job.steps - 10)
            assert np.array_equal(resumed.particles.icell,
                                  ref_state["icell"])
            for attr in ("dx", "dy", "vx", "vy"):
                assert np.array_equal(
                    np.asarray(getattr(resumed.particles, attr)),
                    ref_state[attr]), attr
            assert np.array_equal(resumed.stepper.rho_grid, ref_state["rho"])
            assert np.array_equal(resumed.stepper.ex_grid, ref_state["ex"])
        finally:
            resumed.close()

    def test_preempt_non_running_is_noop(self):
        with JobEngine(max_workers=1, autostart=False) as engine:
            a = engine.submit(small_job())
            assert not engine.preempt(a)

    def test_shutdown_parks_running_job(self):
        engine = JobEngine(max_workers=1)
        a = engine.submit(small_job(steps=400))
        stream = engine.stream(a, timeout=60)
        for _ in range(2):
            next(stream)
        engine.close()
        info = engine.status(a)
        assert info.state is JobState.PREEMPTED
        assert 0 < info.steps_done < 400


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
class TestFailureIsolation:
    def test_crashed_job_fails_alone(self):
        """A permanently faulting job dies; its neighbours don't notice."""
        inj = FaultInjector().add_kernel_raise(step=3, once=False)
        with JobEngine(max_workers=2) as engine:
            bad = engine.submit(small_job(max_retries=1), injector=inj)
            good = engine.submit(small_job(case="two-stream", steps=15))
            r_bad = engine.result(bad, timeout=120)
            r_good = engine.result(good, timeout=120)
            # the engine survives and accepts new work
            again = engine.submit(small_job(steps=5))
            r_again = engine.result(again, timeout=60)
        assert r_bad.state is JobState.FAILED
        assert "permanent failure" in r_bad.error
        assert r_bad.supervisor["rollbacks"] >= 1
        assert r_good.ok and r_again.ok
        assert engine.stats.failed == 1 and engine.stats.succeeded == 2

    def test_transient_fault_recovers_and_succeeds(self):
        inj = FaultInjector(seed=3).add_nan(step=5, array="vx", count=4)
        with JobEngine(max_workers=1) as engine:
            a = engine.submit(small_job(), injector=inj)
            res = engine.result(a, timeout=120)
        assert res.ok
        assert res.supervisor["rollbacks"] >= 1
        assert res.timings["cumulative"]["rollbacks"] >= 1

    def test_unbuildable_job_fails_cleanly(self):
        # morton ordering requires power-of-two dims; 12x12 cannot build
        with JobEngine(max_workers=1) as engine:
            a = engine.submit(small_job(grid=(12, 12)))
            ok = engine.submit(small_job(steps=5))
            ra = engine.result(a, timeout=60)
            rok = engine.result(ok, timeout=60)
        assert ra.state is JobState.FAILED and ra.error
        assert rok.ok


# ----------------------------------------------------------------------
# Streaming
# ----------------------------------------------------------------------
class TestStreaming:
    def test_stream_covers_every_step(self):
        with JobEngine(max_workers=1) as engine:
            a = engine.submit(small_job(steps=12))
            events = list(engine.stream(a, timeout=60))
        steps = [e["step"] for e in events]
        assert set(steps) == set(range(1, 13))  # at-least-once per step
        for key in ("t", "field_energy", "kinetic_energy",
                    "mode_amplitude", "phase_seconds", "segment"):
            assert key in events[0]

    def test_stream_after_completion_replays_then_ends(self):
        with JobEngine(max_workers=1) as engine:
            a = engine.submit(small_job(steps=8))
            engine.result(a, timeout=60)
            events = list(engine.stream(a))
        assert len(events) >= 8


# ----------------------------------------------------------------------
# The estimator-style facade
# ----------------------------------------------------------------------
class TestClientFacade:
    def test_map_and_gather(self):
        jobs = [small_job(steps=6), small_job(steps=8, case="two-stream")]
        with JobClient(max_workers=2) as client:
            handles = client.map(jobs)
            results = client.gather(handles, timeout=120)
        assert [r.ok for r in results] == [True, True]
        assert [r.steps_done for r in results] == [6, 8]
        assert handles[0].job is jobs[0]

    def test_handle_status_and_done(self):
        with JobClient(max_workers=1) as client:
            h = client.submit(small_job(steps=6))
            h.result(timeout=60)
            assert h.done()
            assert h.status().state is JobState.SUCCEEDED

    def test_borrowed_engine_left_open(self):
        engine = JobEngine(max_workers=1)
        try:
            with JobClient(engine) as client:
                client.submit(small_job(steps=5)).result(timeout=60)
            # the client must not close an engine it did not create
            jid = engine.submit(small_job(steps=5))
            assert engine.result(jid, timeout=60).ok
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Resource hygiene
# ----------------------------------------------------------------------
class TestResourceHygiene:
    def test_no_dev_shm_leak_after_engine_shutdown(self):
        """An mp-backed job's arena dies with the engine, not the
        interpreter (the chaos gate's leak scan, engine edition)."""
        before = shm_entries()
        with JobEngine(max_workers=1) as engine:
            a = engine.submit(small_job(
                backend="numpy-mp", workers=2, steps=6, n_particles=1200,
            ))
            res = engine.result(a, timeout=180)
        assert res.ok
        assert shm_entries() == before

    def test_data_dir_checkpoints_cleaned_for_finished_jobs(self, tmp_path):
        data = tmp_path / "engine-data"
        with JobEngine(max_workers=1, data_dir=data) as engine:
            a = engine.submit(small_job(steps=10))
            engine.result(a, timeout=60)
            assert not (data / a).exists()  # settled job's rotation removed
        assert data.exists()  # caller-owned dir survives close
