"""Simulated-OpenMP tests: partitioning, reductions, roofline scaling."""

import numpy as np
import pytest

from repro.core import OptimizationConfig
from repro.core.kernels import accumulate_redundant, accumulate_standard
from repro.curves import get_ordering
from repro.parallel.openmp import (
    ThreadScalingModel,
    parallel_accumulate_redundant,
    parallel_accumulate_standard,
    partition_range,
)
from repro.perf.costmodel import LoopKind
from repro.perf.machine import MachineSpec
from tests.conftest import random_particle_arrays

OPT = OptimizationConfig.fully_optimized()


class TestPartitionRange:
    def test_covers_exactly(self):
        slices = partition_range(100, 7)
        covered = []
        for sl in slices:
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(100))

    def test_balanced(self):
        sizes = [sl.stop - sl.start for sl in partition_range(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_threads_than_work(self):
        slices = partition_range(2, 8)
        assert len(slices) == 8
        sizes = [sl.stop - sl.start for sl in slices]
        assert sum(sizes) == 2

    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            partition_range(10, 0)


class TestParallelAccumulate:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 8])
    def test_redundant_matches_serial(self, rng, nthreads):
        o = get_ordering("morton", 16, 16)
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 500, 16, 16)
        icell = o.encode(ix, iy)
        serial = np.zeros((o.ncells_allocated, 4))
        accumulate_redundant(serial, icell, dx, dy, 0.7)
        par = np.zeros_like(serial)
        parallel_accumulate_redundant(par, icell, dx, dy, 0.7, nthreads)
        np.testing.assert_allclose(par, serial, atol=1e-12)

    @pytest.mark.parametrize("nthreads", [1, 2, 5])
    def test_standard_matches_serial(self, rng, nthreads):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 500, 16, 16)
        serial = np.zeros((16, 16))
        accumulate_standard(serial, ix, iy, dx, dy, -1.0)
        par = np.zeros((16, 16))
        parallel_accumulate_standard(par, ix, iy, dx, dy, -1.0, nthreads)
        np.testing.assert_allclose(par, serial, atol=1e-12)

    def test_adds_to_existing_content(self, rng):
        o = get_ordering("row-major", 16, 16)
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, 100, 16, 16)
        rho = np.ones((o.ncells_allocated, 4))
        parallel_accumulate_redundant(rho, o.encode(ix, iy), dx, dy, 1.0, 2)
        assert rho.sum() == pytest.approx(o.ncells_allocated * 4 + 100)


class TestThreadScalingModel:
    @pytest.fixture
    def model(self):
        return ThreadScalingModel(MachineSpec.sandybridge())

    def test_compute_bound_scales_linearly(self, model):
        # accumulate is compute-bound at low threads
        t1 = model.loop_seconds(LoopKind.ACCUMULATE, OPT, 10_000_000, 1)
        t2 = model.loop_seconds(LoopKind.ACCUMULATE, OPT, 10_000_000, 2)
        assert t1 / t2 == pytest.approx(2.0, rel=0.1)

    def test_update_x_saturates_at_channels(self, model):
        # Fig. 8: update-positions hits the bandwidth roof
        t4 = model.loop_seconds(LoopKind.UPDATE_X, OPT, 50_000_000, 4)
        t8 = model.loop_seconds(LoopKind.UPDATE_X, OPT, 50_000_000, 8)
        assert t4 / t8 < 1.3  # far from the ideal 2x

    def test_update_x_reaches_stream_bandwidth(self, model):
        # Fig. 8: update-positions achieves STREAM-level bandwidth on 8
        # threads while the irregular loops sit below it
        bw_x = model.loop_bandwidth_gbs(LoopKind.UPDATE_X, OPT, 50_000_000, 8)
        assert bw_x == pytest.approx(model.bw.bandwidth_gbs(8), rel=0.1)

    def test_update_v_below_peak_bandwidth(self, model):
        miss = {"L2": 0.5, "L3": 0.3}
        bw_v = model.loop_bandwidth_gbs(LoopKind.UPDATE_V, OPT, 50_000_000, 8, miss)
        assert bw_v < 0.8 * model.bw.bandwidth_gbs(8)

    def test_iteration_keys_split(self, model):
        out = model.iteration_seconds(OPT, 1_000_000, 4)
        assert {"update_v", "update_x", "accumulate", "sort", "total"} <= set(out)

    def test_iteration_keys_fused(self, model):
        out = model.iteration_seconds(OPT.with_(loop_mode="fused"), 1_000_000, 4)
        assert "particle_loops" in out
        assert out["total"] >= out["particle_loops"]

    def test_sort_parallelizes(self, model):
        t1 = model.sort_seconds(OPT, 10_000_000, 1)
        t4 = model.sort_seconds(OPT, 10_000_000, 4)
        assert t4 < t1

    def test_miss_bytes_increase_memory_time(self, model):
        t0 = model.loop_seconds(LoopKind.UPDATE_V, OPT, 50_000_000, 8)
        t1 = model.loop_seconds(
            LoopKind.UPDATE_V, OPT, 50_000_000, 8, {"L3": 1.0}
        )
        assert t1 > t0


class TestTable6And7Shapes:
    """The thread-scaling tables' qualitative content."""

    def test_table6_knee_at_eight_threads(self):
        from repro.parallel.scaling import strong_scaling_threads

        rows = dict(
            strong_scaling_threads(
                [1, 2, 4, 8], 50_000_000, 100,
                MachineSpec.sandybridge(),
                OPT.with_(sort_period=50),
            )
        )
        # near-ideal to 4 threads (paper: 45.8 -> 89.9 -> 170)
        assert rows[2] / rows[1] > 1.9
        assert rows[4] / rows[1] > 3.4
        # clear knee at 8 (paper: 266 vs ideal 366)
        assert rows[8] / rows[1] < 7.0

    def test_table7_ordering(self):
        """Table VII: SoA-3loops < {SoA-1loop, AoS-3loops} < AoS-1loop."""
        model = ThreadScalingModel(MachineSpec.sandybridge())
        misses = {
            k: {"L2": 0.3, "L3": 0.25} for k in LoopKind
        }
        fused_misses = {k: {"L2": 0.45, "L3": 0.4} for k in LoopKind}

        def total(pl, lm):
            cfg = OPT.with_(particle_layout=pl, loop_mode=lm, sort_period=50)
            m = fused_misses if lm == "fused" else misses
            return model.iteration_seconds(cfg, 50_000_000, 8, m)["total"]

        soa3 = total("soa", "split")
        soa1 = total("soa", "fused")
        aos3 = total("aos", "split")
        aos1 = total("aos", "fused")
        assert soa3 < soa1
        assert soa3 < aos3
        assert aos1 >= soa1 * 0.95  # AoS never wins
