"""Cross-backend equivalence: every registered backend vs the oracles.

Every backend the registry knows (and whose dependencies are
installed) must reproduce the scalar reference kernels of
:mod:`repro.core.reference` on float64 to tight tolerance — the same
oracle discipline `tests/test_core_kernels.py` applies to the numpy
kernels, now applied uniformly through the backend interface.  The
numba-absent path (registry still lists it, `get_backend` refuses
politely, "auto" falls back) is covered whether or not numba is
installed.
"""

import numpy as np
import pytest

from repro.core import OptimizationConfig, Simulation
from repro.core.backends import (
    AUTO,
    BackendUnavailableError,
    KernelBackend,
    NumbaBackend,
    available_backends,
    get_backend,
    known_backend_names,
    resolve_backend_name,
)
from repro.core.reference import (
    accumulate_redundant_ref,
    accumulate_standard_ref,
    interpolate_redundant_ref,
    interpolate_standard_ref,
    push_axis_ref,
)
from repro.curves import get_ordering
from repro.grid import GridSpec
from repro.particles import LandauDamping
from tests.conftest import random_particle_arrays

NCX = NCY = 16
N = 300

HAS_NUMBA = NumbaBackend.is_available()


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    """Each backend whose dependencies are installed."""
    return get_backend(request.param)


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_numba_always_registered(self):
        # registered even when not importable: the name is known, the
        # instantiation is what's gated
        assert "numba" in known_backend_names()

    def test_auto_resolves_to_available(self):
        assert resolve_backend_name(AUTO) in available_backends()

    def test_explicit_name_resolves_to_itself(self):
        assert resolve_backend_name("numpy") == "numpy"

    def test_unknown_backend_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown kernel backend"):
            get_backend("not-a-backend")

    def test_get_backend_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_config_validates_backend_names(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            OptimizationConfig(backend="fortran")
        for name in (AUTO, *known_backend_names()):
            assert OptimizationConfig(backend=name).backend == name

    def test_config_resolved_backend(self):
        assert OptimizationConfig().resolved_backend in available_backends()
        assert OptimizationConfig(backend="numpy").resolved_backend == "numpy"

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed: skip-path untestable")
    def test_numba_absent_raises_unavailable(self):
        with pytest.raises(BackendUnavailableError, match="repro\\[jit\\]"):
            get_backend("numba")

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed: skip-path untestable")
    def test_auto_falls_back_to_numpy_without_numba(self):
        assert resolve_backend_name(AUTO) == "numpy"
        assert get_backend(AUTO).name == "numpy"

    @pytest.mark.skipif(not HAS_NUMBA, reason="needs numba")
    def test_auto_prefers_numba_when_installed(self):
        assert resolve_backend_name(AUTO) == "numba"


# ----------------------------------------------------------------------
# Kernel equivalence vs the scalar oracles (parametrized over backends)
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    def test_accumulate_standard(self, backend, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, N, NCX, NCY)
        rho = np.zeros((NCX, NCY))
        ref = np.zeros((NCX, NCY))
        backend.accumulate_standard(rho, ix, iy, dx, dy, charge=0.7)
        accumulate_standard_ref(ref, ix, iy, dx, dy, charge=0.7)
        np.testing.assert_allclose(rho, ref, atol=1e-12)

    def test_accumulate_redundant(self, backend, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, N, NCX, NCY)
        ordering = get_ordering("morton", NCX, NCY)
        icell = ordering.encode(ix, iy)
        ncells = ordering.ncells_allocated
        rho = np.zeros((ncells, 4))
        ref = np.zeros((ncells, 4))
        backend.accumulate_redundant(rho, icell, dx, dy, charge=1.3)
        accumulate_redundant_ref(ref, icell, dx, dy, charge=1.3)
        np.testing.assert_allclose(rho, ref, atol=1e-12)

    def test_interpolate_standard(self, backend, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, N, NCX, NCY)
        ex = rng.random((NCX, NCY))
        ey = rng.random((NCX, NCY))
        got = backend.interpolate_standard(ex, ey, ix, iy, dx, dy)
        want = interpolate_standard_ref(ex, ey, ix, iy, dx, dy)
        np.testing.assert_allclose(got[0], want[0], atol=1e-13)
        np.testing.assert_allclose(got[1], want[1], atol=1e-13)

    def test_interpolate_redundant(self, backend, rng):
        ix, iy, dx, dy, _, _ = random_particle_arrays(rng, N, NCX, NCY)
        ordering = get_ordering("morton", NCX, NCY)
        icell = ordering.encode(ix, iy)
        e_1d = rng.random((ordering.ncells_allocated, 8))
        got = backend.interpolate_redundant(e_1d, icell, dx, dy)
        want = interpolate_redundant_ref(e_1d, icell, dx, dy)
        np.testing.assert_allclose(got[0], want[0], atol=1e-13)
        np.testing.assert_allclose(got[1], want[1], atol=1e-13)

    def test_update_velocities(self, backend, rng):
        for coef in (1.0, -0.37):
            vx = rng.normal(size=N)
            vy = rng.normal(size=N)
            ex_p = rng.normal(size=N)
            ey_p = rng.normal(size=N)
            want_x = vx + coef * ex_p
            want_y = vy + coef * ey_p
            backend.update_velocities(vx, vy, ex_p, ey_p, coef, coef)
            np.testing.assert_allclose(vx, want_x, atol=1e-14)
            np.testing.assert_allclose(vy, want_y, atol=1e-14)

    @pytest.mark.parametrize("variant", ["branch", "modulo", "bitwise"])
    def test_push_axis_vs_reference(self, backend, rng, variant):
        # positions up to several periods outside the box, both signs
        x = rng.uniform(-3 * NCX, 4 * NCX, 500)
        i, off = backend.push_axis(x, NCX, variant)
        assert np.all((0 <= i) & (i < NCX))
        assert np.all((0.0 <= off) & (off < 1.0))
        for p in range(len(x)):
            ri, roff = push_axis_ref(float(x[p]), NCX)
            # all variants land the same physical position modulo the box
            got = (i[p] + off[p]) % NCX
            want = (ri + roff) % NCX
            assert got == pytest.approx(want, abs=1e-9)

    def test_push_axis_bitwise_requires_pow2(self, backend):
        with pytest.raises(ValueError, match="power-of-two"):
            backend.push_axis(np.array([1.5]), 12, "bitwise")

    def test_push_positions_matches_numpy_backend(self, backend, rng):
        from repro.particles import make_storage

        numpy_backend = get_backend("numpy")
        ordering = get_ordering("morton", NCX, NCY)
        ix, iy, dx, dy, vx, vy = random_particle_arrays(rng, N, NCX, NCY)
        icell = ordering.encode(ix, iy)

        def fresh():
            s = make_storage("soa", N, store_coords=True)
            s.set_state(icell.copy(), dx.copy(), dy.copy(),
                        vx.copy(), vy.copy(), ix.copy(), iy.copy())
            return s

        a, b = fresh(), fresh()
        backend.push_positions(a, NCX, NCY, ordering, "bitwise", 1.0, 1.0)
        numpy_backend.push_positions(b, NCX, NCY, ordering, "bitwise", 1.0, 1.0)
        np.testing.assert_array_equal(np.asarray(a.icell), np.asarray(b.icell))
        np.testing.assert_allclose(np.asarray(a.dx), np.asarray(b.dx), atol=1e-12)
        np.testing.assert_allclose(np.asarray(a.dy), np.asarray(b.dy), atol=1e-12)


class TestKernelEquivalence3D:
    NC = 8

    def _cells(self, rng, n):
        from repro.pic3d.ordering3d import Morton3DOrdering

        o = Morton3DOrdering(self.NC, self.NC, self.NC)
        ix = rng.integers(0, self.NC, n)
        iy = rng.integers(0, self.NC, n)
        iz = rng.integers(0, self.NC, n)
        return o, o.encode(ix, iy, iz)

    def test_accumulate_redundant_3d(self, backend, rng):
        from repro.pic3d.kernels3d import accumulate_redundant_3d

        n = 200
        o, icell = self._cells(rng, n)
        dx, dy, dz = rng.random(n), rng.random(n), rng.random(n)
        rho = np.zeros((o.ncells_allocated, 8))
        ref = np.zeros((o.ncells_allocated, 8))
        backend.accumulate_redundant_3d(rho, icell, dx, dy, dz, charge=0.9)
        accumulate_redundant_3d(ref, icell, dx, dy, dz, charge=0.9)
        np.testing.assert_allclose(rho, ref, atol=1e-12)
        assert rho.sum() == pytest.approx(0.9 * n, rel=1e-12)

    def test_interpolate_redundant_3d(self, backend, rng):
        from repro.pic3d.kernels3d import interpolate_redundant_3d

        n = 200
        o, icell = self._cells(rng, n)
        dx, dy, dz = rng.random(n), rng.random(n), rng.random(n)
        e_1d = rng.random((o.ncells_allocated, 24))
        got = backend.interpolate_redundant_3d(e_1d, icell, dx, dy, dz)
        want = interpolate_redundant_3d(e_1d, icell, dx, dy, dz)
        for g, w in zip(got, want):
            np.testing.assert_allclose(g, w, atol=1e-13)


# ----------------------------------------------------------------------
# Whole-simulation equivalence: identical physics across backends
# ----------------------------------------------------------------------
class TestSimulationEquivalence:
    @pytest.mark.skipif(
        len(available_backends()) < 2, reason="only one backend installed"
    )
    def test_backends_produce_identical_physics(self, small_grid):
        histories = {}
        for name in available_backends():
            cfg = OptimizationConfig.fully_optimized().with_(backend=name)
            sim = Simulation(
                small_grid, LandauDamping(0.05), 4000, cfg,
                dt=0.1, quiet=True, seed=None,
            )
            sim.run(8)
            histories[name] = sim.history.as_arrays()
        base = histories.pop("numpy")
        for name, h in histories.items():
            np.testing.assert_allclose(
                h["field_energy"], base["field_energy"], rtol=1e-10,
                err_msg=f"backend {name} diverged from numpy",
            )
            np.testing.assert_allclose(
                h["total_energy"], base["total_energy"], rtol=1e-10,
                err_msg=f"backend {name} diverged from numpy",
            )

    def test_custom_backend_registers_and_runs(self, small_grid):
        """Third-party backends plug in through the decorator."""
        from repro.core.backends import NumpyBackend, register_backend

        @register_backend
        class TracingBackend(NumpyBackend):
            name = "tracing-test"
            priority = -1  # never auto-selected
            calls = []

            def accumulate_redundant(self, *a, **kw):
                type(self).calls.append("accumulate_redundant")
                return super().accumulate_redundant(*a, **kw)

        try:
            assert "tracing-test" in known_backend_names()
            cfg = OptimizationConfig.fully_optimized().with_(backend="tracing-test")
            sim = Simulation(
                small_grid, LandauDamping(0.05), 1000, cfg,
                dt=0.1, quiet=True, seed=None,
            )
            sim.run(2)
            assert TracingBackend.calls  # kernels actually dispatched through it
            assert sim.history.energy_drift() < 1e-2
        finally:
            # unregister so other tests see the pristine registry
            from repro.core import backends as B

            B._REGISTRY.pop("tracing-test", None)
            B._INSTANCES.pop("tracing-test", None)

    def test_backend_surface_is_abstract(self):
        with pytest.raises(TypeError):
            KernelBackend()  # abstract methods must be implemented
