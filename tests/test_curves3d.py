"""Tests for the 3D space-filling curves (paper §VI outlook)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.curves3d import (
    dilate3_16,
    hilbert_decode_3d,
    hilbert_encode_3d,
    morton_decode_3d,
    morton_encode_3d,
    undilate3_16,
)


class TestDilation3:
    def test_small_values(self):
        # 0b111 -> 0b001001001
        assert int(dilate3_16(np.array([0b111]))[0]) == 0b001001001

    def test_full_16bit(self):
        # every third bit set, 16 of them, lowest at position 0
        v = int(dilate3_16(np.array([0xFFFF]))[0])
        assert v == sum(1 << (3 * b) for b in range(16))
        assert bin(v).count("1") == 16

    def test_roundtrip(self, rng):
        x = rng.integers(0, 1 << 16, 2000)
        np.testing.assert_array_equal(
            undilate3_16(dilate3_16(x)), x.astype(np.uint64)
        )

    def test_zero_gaps(self):
        v = int(dilate3_16(np.array([0b1011]))[0])
        for b in range(16):
            assert ((v >> (3 * b + 1)) & 1) == 0
            assert ((v >> (3 * b + 2)) & 1) == 0


class TestMorton3D:
    def test_unit_cube_order(self):
        # z least significant: (0,0,0),(0,0,1),(0,1,0),(0,1,1),(1,0,0)...
        x = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        y = np.array([0, 0, 1, 1, 0, 0, 1, 1])
        z = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        np.testing.assert_array_equal(morton_encode_3d(x, y, z), np.arange(8))

    def test_roundtrip_random(self, rng):
        x = rng.integers(0, 1 << 12, 3000)
        y = rng.integers(0, 1 << 12, 3000)
        z = rng.integers(0, 1 << 12, 3000)
        jx, jy, jz = morton_decode_3d(morton_encode_3d(x, y, z))
        np.testing.assert_array_equal(jx, x)
        np.testing.assert_array_equal(jy, y)
        np.testing.assert_array_equal(jz, z)

    def test_bijective_on_cube(self):
        n = 8
        g = np.arange(n)
        xs, ys, zs = np.meshgrid(g, g, g, indexing="ij")
        codes = morton_encode_3d(xs.ravel(), ys.ravel(), zs.ravel())
        assert len(np.unique(codes)) == n**3
        assert codes.min() == 0 and codes.max() == n**3 - 1

    def test_locality_of_z_moves(self):
        # half of +1 z-moves change the code by exactly 1
        n = 16
        g = np.arange(n)
        xs, ys, zs = np.meshgrid(g, g, g[:-1], indexing="ij")
        a = morton_encode_3d(xs.ravel(), ys.ravel(), zs.ravel())
        b = morton_encode_3d(xs.ravel(), ys.ravel(), zs.ravel() + 1)
        frac_unit = np.mean((b - a) == 1)
        assert frac_unit == pytest.approx(8 / 15, abs=0.01)


class TestHilbert3D:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_bijective(self, order):
        n = 1 << order
        g = np.arange(n)
        xs, ys, zs = np.meshgrid(g, g, g, indexing="ij")
        d = hilbert_encode_3d(order, xs.ravel(), ys.ravel(), zs.ravel())
        assert len(np.unique(d)) == n**3
        assert d.min() == 0 and d.max() == n**3 - 1

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_roundtrip(self, order):
        n = 1 << order
        g = np.arange(n)
        xs, ys, zs = np.meshgrid(g, g, g, indexing="ij")
        d = hilbert_encode_3d(order, xs.ravel(), ys.ravel(), zs.ravel())
        jx, jy, jz = hilbert_decode_3d(order, d)
        np.testing.assert_array_equal(jx, xs.ravel())
        np.testing.assert_array_equal(jy, ys.ravel())
        np.testing.assert_array_equal(jz, zs.ravel())

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_adjacency(self, order):
        """Consecutive Hilbert indices are face-adjacent cube cells —
        the defining property."""
        n = 1 << order
        d = np.arange(n**3)
        x, y, z = hilbert_decode_3d(order, d)
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y)) + np.abs(np.diff(z))
        np.testing.assert_array_equal(steps, np.ones(n**3 - 1))

    def test_starts_at_origin(self):
        x, y, z = hilbert_decode_3d(3, np.array([0]))
        assert (int(x[0]), int(y[0]), int(z[0])) == (0, 0, 0)

    def test_locality_beats_morton_worst_case(self):
        """Hilbert has no long jumps between consecutive indices;
        Morton does (its Z-jumps span half the cube)."""
        order = 4
        n = 1 << order
        d = np.arange(n**3)
        hx, hy, hz = hilbert_decode_3d(order, d)
        mx, my, mz = morton_decode_3d(d)
        h_steps = np.abs(np.diff(hx)) + np.abs(np.diff(hy)) + np.abs(np.diff(hz))
        m_steps = np.abs(np.diff(mx)) + np.abs(np.diff(my)) + np.abs(np.diff(mz))
        assert h_steps.max() == 1
        assert m_steps.max() > 5


@given(
    order=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_hilbert3d_roundtrip_random(order, seed):
    rng = np.random.default_rng(seed)
    n = 1 << order
    x = rng.integers(0, n, 50)
    y = rng.integers(0, n, 50)
    z = rng.integers(0, n, 50)
    d = hilbert_encode_3d(order, x, y, z)
    assert d.min() >= 0 and d.max() < n**3
    jx, jy, jz = hilbert_decode_3d(order, d)
    np.testing.assert_array_equal(jx, x)
    np.testing.assert_array_equal(jy, y)
    np.testing.assert_array_equal(jz, z)


@given(
    x=st.integers(0, (1 << 16) - 1),
    y=st.integers(0, (1 << 16) - 1),
    z=st.integers(0, (1 << 16) - 1),
)
@settings(max_examples=200, deadline=None)
def test_morton3d_roundtrip_any_16bit(x, y, z):
    jx, jy, jz = morton_decode_3d(morton_encode_3d(x, y, z))
    assert (int(jx), int(jy), int(jz)) == (x, y, z)
