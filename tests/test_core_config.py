"""OptimizationConfig tests: validation, presets, the Table IV stack."""

import pytest

from repro.core import OptimizationConfig


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("field_layout", "sparse"),
            ("particle_layout", "soup"),
            ("loop_mode", "tiled"),
            ("position_update", "wrap"),
            ("sort_variant", "quick"),
        ],
    )
    def test_rejects_unknown_choices(self, field, value):
        with pytest.raises(ValueError):
            OptimizationConfig(**{field: value})

    def test_rejects_negative_sort_period(self):
        with pytest.raises(ValueError):
            OptimizationConfig(sort_period=-1)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            OptimizationConfig(chunk_size=0)

    def test_frozen(self):
        cfg = OptimizationConfig()
        with pytest.raises(AttributeError):
            cfg.hoisting = False

    def test_with_functional_update(self):
        cfg = OptimizationConfig().with_(hoisting=False)
        assert cfg.hoisting is False
        assert OptimizationConfig().hoisting is True


class TestStoreCoordsDefault:
    def test_row_major_recomputes(self):
        assert OptimizationConfig(ordering="row-major").effective_store_coords is False

    def test_column_major_recomputes(self):
        assert OptimizationConfig(ordering="column-major").effective_store_coords is False

    @pytest.mark.parametrize("name", ["l4d", "morton", "hilbert"])
    def test_sfc_orderings_store(self, name):
        assert OptimizationConfig(ordering=name).effective_store_coords is True

    def test_explicit_override(self):
        cfg = OptimizationConfig(ordering="morton", store_coords=False)
        assert cfg.effective_store_coords is False


class TestTable4Stack:
    def test_seven_rows(self):
        stack = OptimizationConfig.table4_stack()
        assert len(stack) == 7
        assert stack[0][0] == "Baseline"

    def test_each_row_changes_exactly_one_axis(self):
        stack = [cfg for _, cfg in OptimizationConfig.table4_stack()]
        diffs = []
        fields = (
            "field_layout",
            "ordering",
            "particle_layout",
            "loop_mode",
            "position_update",
            "hoisting",
        )
        for a, b in zip(stack, stack[1:]):
            changed = [f for f in fields if getattr(a, f) != getattr(b, f)]
            diffs.append(changed)
        assert diffs == [
            ["hoisting"],
            ["loop_mode"],
            ["field_layout"],
            ["particle_layout"],
            ["ordering"],
            ["position_update"],
        ]

    def test_baseline_is_naive(self):
        b = OptimizationConfig.baseline()
        assert b.field_layout == "standard"
        assert b.particle_layout == "aos"
        assert b.loop_mode == "fused"
        assert b.position_update == "branch"
        assert b.hoisting is False

    def test_fully_optimized_is_paper_best(self):
        f = OptimizationConfig.fully_optimized()
        assert f.field_layout == "redundant"
        assert f.ordering == "morton"
        assert f.particle_layout == "soa"
        assert f.loop_mode == "split"
        assert f.position_update == "bitwise"
        assert f.hoisting is True

    def test_fully_optimized_l4d_kwargs(self):
        f = OptimizationConfig.fully_optimized("l4d", size=16)
        assert f.ordering == "l4d"
        assert f.ordering_kwargs == {"size": 16}
