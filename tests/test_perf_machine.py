"""MachineSpec / CacheLevelSpec tests."""

import pytest

from repro.perf.machine import CacheLevelSpec, MachineSpec, OpCosts


class TestCacheLevelSpec:
    def test_geometry_derivation(self):
        lv = CacheLevelSpec("L1", 32 * 1024, 64, 8, 10.0)
        assert lv.n_lines == 512
        assert lv.n_sets == 64

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheLevelSpec("L1", 1024, 48, 2, 1.0)

    def test_rejects_indivisible_capacity(self):
        with pytest.raises(ValueError):
            CacheLevelSpec("L1", 1000, 64, 4, 1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheLevelSpec("L1", 0, 64, 4, 1.0)


class TestMachineSpec:
    def test_presets_construct(self):
        for spec in (MachineSpec.haswell(), MachineSpec.sandybridge(), MachineSpec.tiny_test()):
            assert spec.line_bytes == 64
            assert spec.freq_ghz > 0

    def test_haswell_matches_paper(self):
        m = MachineSpec.haswell()
        assert m.freq_ghz == pytest.approx(2.3)
        assert m.cores_per_socket == 10
        assert m.mem_channels == 2
        assert m.levels[0].capacity_bytes == 32 * 1024

    def test_sandybridge_matches_paper(self):
        m = MachineSpec.sandybridge()
        assert m.freq_ghz == pytest.approx(2.7)
        assert m.cores_per_socket == 8
        assert m.mem_channels == 4
        assert m.peak_bandwidth_gbs == pytest.approx(51.2)

    def test_levels_must_share_line_size(self):
        with pytest.raises(ValueError):
            MachineSpec(
                "bad", 1.0, 4, 2.0, 2.0,
                (
                    CacheLevelSpec("L1", 1024, 64, 2, 1.0),
                    CacheLevelSpec("L2", 4096, 128, 2, 1.0),
                ),
                1, 1, 1.0, 1.0,
            )

    def test_levels_must_grow(self):
        with pytest.raises(ValueError):
            MachineSpec(
                "bad", 1.0, 4, 2.0, 2.0,
                (
                    CacheLevelSpec("L1", 4096, 64, 2, 1.0),
                    CacheLevelSpec("L2", 1024, 64, 2, 1.0),
                ),
                1, 1, 1.0, 1.0,
            )

    def test_cycle_ns(self):
        assert MachineSpec.haswell().cycle_ns == pytest.approx(1 / 2.3)


class TestScaling:
    def test_scaled_divides_capacities(self):
        m = MachineSpec.haswell().scaled(8)
        assert m.levels[0].capacity_bytes == 4 * 1024
        assert m.levels[1].capacity_bytes == 32 * 1024
        # geometry preserved
        assert m.levels[0].associativity == 8
        assert m.line_bytes == 64

    def test_scaled_name_suffix(self):
        assert MachineSpec.haswell().scaled(4).name == "haswell/4"
        assert MachineSpec.haswell().scaled(4, "-test").name == "haswell-test"

    def test_scaled_rejects_too_small(self):
        with pytest.raises(ValueError):
            MachineSpec.tiny_test().scaled(64)

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            MachineSpec.haswell().scaled(0)

    def test_scale_one_identity_capacities(self):
        m = MachineSpec.haswell().scaled(1)
        assert [l.capacity_bytes for l in m.levels] == [
            l.capacity_bytes for l in MachineSpec.haswell().levels
        ]


class TestOpCosts:
    def test_defaults_ordering(self):
        ops = OpCosts()
        # structural cost ratios the model depends on
        assert ops.int_div > ops.float_floor_call > ops.float_floor_inline
        assert ops.branch_miss > ops.branch
        assert ops.gather_element > ops.load_store
