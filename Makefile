# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-service test-3d coverage bench bench-gate bench-scaling chaos chaos-service examples results clean docs-check check verify-gate verify-full

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

docs-check:
	$(PYTHON) tools/check_links.py
	$(PYTHON) tools/check_docstrings.py

# fast service-layer subset: the multi-job engine (submit/cancel/
# priority/preempt-resume/isolation) and the spool/CLI front-end
test-service:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_service_engine.py tests/test_service_cli.py tests/test_service_recovery.py

# 3D feature-parity subset: kernels/orderings, the parity acceptance
# tests (fused==split bitwise, numpy-mp deposit bitwise at 2 and 4
# workers), and 3D checkpoint/resume
test-3d:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_pic3d.py tests/test_pic3d_parity.py tests/test_checkpoint3d.py tests/test_curves3d.py

# line-coverage floor on repro.pic3d + repro.verify (skips with exit 0
# when pytest-cov is not installed — the gate never requires an install)
coverage:
	$(PYTHON) tools/coverage_gate.py

check: docs-check chaos chaos-service bench-gate verify-gate test-service test-3d coverage
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/

# fault-injection suite under a fixed seed, then assert zero leaked
# /dev/shm segments and zero checkpoint temp files
chaos:
	$(PYTHON) tools/chaos_check.py

# service-level chaos gate: SIGKILL `repro serve` mid-campaign, restart
# with --recover, assert every job settles bitwise-equal to an
# uninterrupted golden run and no *.tmp / orphan *.lease litter remains
chaos-service:
	PYTHONPATH=src $(PYTHON) tools/chaos_service.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# fused-vs-split performance gate: fails if a fused-capable backend's
# single-pass kernel is slower than its split rendering; skips cleanly
# when no fused-capable backend (numba) is installed
bench-gate:
	$(PYTHON) tools/bench_gate.py

# golden-run regression gate: every importable backend must reproduce
# the committed golden/GOLDEN_*.json documents (bitwise for numpy and
# numpy-mp, within recorded tolerances for numba); regenerate after an
# intentional numerics change with `python tools/verify_gate.py
# --regenerate` (workflow: docs/verification.md)
verify-gate:
	$(PYTHON) tools/verify_gate.py

# the full differential-verification matrix: the verify_full-marked
# tests that tier-1 deselects (bigger sampled matrix, oracles on every
# backend) plus a 16-sample CLI sweep
verify-full:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m verify_full tests/
	PYTHONPATH=src $(PYTHON) -m repro verify --seed 0 --samples 16 --oracles --golden

# quick strong-scaling smoke of the numpy-mp engine (2 workers);
# the full sweep runs via `pytest benchmarks/bench_shm_scaling.py`
bench-scaling:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_shm_scaling.py --smoke --workers 2

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

results: test bench
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache benchmarks/results src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
